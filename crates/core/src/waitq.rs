//! Centralized LRSCwait implementation: a reservation *queue* per bank.
//!
//! This is the paper's Section III-A/B design: an adapter in front of each
//! bank holding up to `q` outstanding `lrwait`/`mwait` entries in FIFO
//! order. With `q = n` (number of cores) it is `LRSCwait_ideal`; smaller `q`
//! trades hardware for fail-fast behaviour under contention. Its hardware
//! cost is what motivates Colibri — see the area model in `lrscwait-model`.

use crate::adapter::{AdapterStats, SingleSlotLrsc, SyncAdapter, SyncEvent};
use crate::msg::{Addr, CoreId, MemRequest, MemResponse, WaitMode, Word};
use crate::state::{StateError, StateReader, StateWriter};
use crate::storage::WordStorage;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    core: CoreId,
    addr: Addr,
    mode: WaitMode,
    expected: Word,
    /// Head-of-queue for its address: response sent (`LrWait`) or armed (`MWait`).
    active: bool,
    /// `LrWait`: reservation still valid. `MWait`: armed, waiting for a write.
    valid: bool,
}

/// Bank adapter with a capacity-`q` reservation queue (plus the classic
/// single LR/SC slot and plain load/store/AMO handling).
#[derive(Clone, Debug)]
pub struct WaitQueueAdapter {
    capacity: usize,
    entries: Vec<Entry>,
    slot: SingleSlotLrsc,
    stats: AdapterStats,
    /// Label override so `q = n` prints as "LRSCwait_ideal".
    ideal: bool,
}

impl WaitQueueAdapter {
    /// Creates an adapter with `capacity` reservation-queue slots.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> WaitQueueAdapter {
        assert!(capacity > 0, "reservation queue needs at least one slot");
        WaitQueueAdapter {
            capacity,
            entries: Vec::with_capacity(capacity.min(1024)),
            slot: SingleSlotLrsc::new(),
            stats: AdapterStats::default(),
            ideal: false,
        }
    }

    /// Creates the ideal variant (`q = num_cores`), labelled accordingly.
    #[must_use]
    pub fn ideal(num_cores: usize) -> WaitQueueAdapter {
        let mut a = WaitQueueAdapter::new(num_cores.max(1));
        a.ideal = true;
        a
    }

    /// Queue capacity `q`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued entries right now.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn first_index_for(&self, addr: Addr) -> Option<usize> {
        self.entries.iter().position(|e| e.addr == addr)
    }

    /// Activates the head entry for `addr` (after a pop or fresh enqueue),
    /// cascading through `mwait` entries whose condition already holds.
    /// `handoff` records whether the activation was triggered by a
    /// predecessor leaving the queue (for the emitted
    /// [`SyncEvent::WaitServed`] events).
    fn activate_next(
        &mut self,
        addr: Addr,
        mem: &mut dyn WordStorage,
        out: &mut Vec<(CoreId, MemResponse)>,
        handoff: bool,
        emit: &mut dyn FnMut(SyncEvent),
    ) {
        while let Some(idx) = self.first_index_for(addr) {
            let entry = self.entries[idx];
            if entry.active {
                return; // current head still in flight
            }
            match entry.mode {
                WaitMode::LrWait => {
                    self.entries[idx].active = true;
                    self.entries[idx].valid = true;
                    emit(SyncEvent::WaitServed {
                        core: entry.core,
                        addr,
                        mode: WaitMode::LrWait,
                        handoff,
                    });
                    out.push((
                        entry.core,
                        MemResponse::Wait {
                            value: mem.read_word(addr),
                            reserved: true,
                        },
                    ));
                    return;
                }
                WaitMode::MWait => {
                    let value = mem.read_word(addr);
                    if value != entry.expected {
                        // Condition already true: notify and keep cascading.
                        self.entries.remove(idx);
                        emit(SyncEvent::WaitServed {
                            core: entry.core,
                            addr,
                            mode: WaitMode::MWait,
                            handoff,
                        });
                        out.push((
                            entry.core,
                            MemResponse::Wait {
                                value,
                                reserved: true,
                            },
                        ));
                    } else {
                        self.entries[idx].active = true;
                        self.entries[idx].valid = true; // armed
                        return;
                    }
                }
            }
        }
    }

    /// A write to `addr` landed: break LRwait reservations, fire armed mwaits.
    fn on_write(
        &mut self,
        addr: Addr,
        mem: &mut dyn WordStorage,
        out: &mut Vec<(CoreId, MemResponse)>,
        emit: &mut dyn FnMut(SyncEvent),
    ) {
        if self.slot.on_write(addr) {
            self.stats.reservations_broken += 1;
            emit(SyncEvent::ReservationBroken { addr });
        }
        if let Some(idx) = self.first_index_for(addr) {
            let entry = self.entries[idx];
            if !entry.active {
                return;
            }
            match entry.mode {
                WaitMode::LrWait => {
                    if entry.valid {
                        self.entries[idx].valid = false;
                        self.stats.reservations_broken += 1;
                        emit(SyncEvent::ReservationBroken { addr });
                    }
                }
                WaitMode::MWait => {
                    if entry.valid {
                        // Fire the monitor and wake any satisfied followers.
                        self.entries.remove(idx);
                        emit(SyncEvent::WaitServed {
                            core: entry.core,
                            addr,
                            mode: WaitMode::MWait,
                            handoff: true,
                        });
                        out.push((
                            entry.core,
                            MemResponse::Wait {
                                value: mem.read_word(addr),
                                reserved: true,
                            },
                        ));
                        self.activate_next(addr, mem, out, true, emit);
                    }
                }
            }
        }
    }
}

impl SyncAdapter for WaitQueueAdapter {
    fn handle_traced(
        &mut self,
        src: CoreId,
        req: &MemRequest,
        mem: &mut dyn WordStorage,
        out: &mut Vec<(CoreId, MemResponse)>,
        emit: &mut dyn FnMut(SyncEvent),
    ) {
        self.stats.requests += 1;
        match *req {
            MemRequest::Load { addr } => {
                self.stats.loads += 1;
                out.push((
                    src,
                    MemResponse::Load {
                        value: mem.read_word(addr),
                    },
                ));
            }
            MemRequest::Store { addr, value, mask } => {
                self.stats.stores += 1;
                mem.write_masked(addr, value, mask);
                self.on_write(addr, mem, out, emit);
                out.push((src, MemResponse::StoreAck));
            }
            MemRequest::Amo { addr, op, operand } => {
                self.stats.amos += 1;
                let old = mem.read_word(addr);
                mem.write_word(addr, op.apply(old, operand));
                self.on_write(addr, mem, out, emit);
                out.push((src, MemResponse::Amo { old }));
            }
            MemRequest::Lr { addr } => {
                self.slot.load_reserved(src, addr);
                out.push((
                    src,
                    MemResponse::Lr {
                        value: mem.read_word(addr),
                    },
                ));
            }
            MemRequest::Sc { addr, value } => {
                let success = self.slot.store_conditional(src, addr);
                if success {
                    self.stats.sc_success += 1;
                    mem.write_word(addr, value);
                } else {
                    self.stats.sc_failure += 1;
                }
                emit(SyncEvent::ScResult {
                    core: src,
                    addr,
                    success,
                    wait: false,
                });
                if success {
                    self.on_write(addr, mem, out, emit);
                }
                out.push((src, MemResponse::Sc { success }));
            }
            MemRequest::LrWait { addr } => {
                let duplicate = self.entries.iter().any(|e| e.core == src);
                if self.entries.len() >= self.capacity || duplicate {
                    debug_assert!(!duplicate, "core {src} has two outstanding wait ops");
                    self.stats.wait_failfast += 1;
                    emit(SyncEvent::WaitFailFast {
                        core: src,
                        addr,
                        mode: WaitMode::LrWait,
                    });
                    out.push((
                        src,
                        MemResponse::Wait {
                            value: mem.read_word(addr),
                            reserved: false,
                        },
                    ));
                    return;
                }
                self.stats.wait_enqueued += 1;
                emit(SyncEvent::WaitEnqueued {
                    core: src,
                    addr,
                    mode: WaitMode::LrWait,
                });
                self.entries.push(Entry {
                    core: src,
                    addr,
                    mode: WaitMode::LrWait,
                    expected: 0,
                    active: false,
                    valid: false,
                });
                self.activate_next(addr, mem, out, false, emit);
            }
            MemRequest::MWait { addr, expected } => {
                let value = mem.read_word(addr);
                if value != expected {
                    // Already changed: immediate notification, no enqueue.
                    out.push((
                        src,
                        MemResponse::Wait {
                            value,
                            reserved: false,
                        },
                    ));
                    return;
                }
                let duplicate = self.entries.iter().any(|e| e.core == src);
                if self.entries.len() >= self.capacity || duplicate {
                    debug_assert!(!duplicate, "core {src} has two outstanding wait ops");
                    self.stats.wait_failfast += 1;
                    emit(SyncEvent::WaitFailFast {
                        core: src,
                        addr,
                        mode: WaitMode::MWait,
                    });
                    out.push((
                        src,
                        MemResponse::Wait {
                            value,
                            reserved: false,
                        },
                    ));
                    return;
                }
                self.stats.wait_enqueued += 1;
                emit(SyncEvent::WaitEnqueued {
                    core: src,
                    addr,
                    mode: WaitMode::MWait,
                });
                self.entries.push(Entry {
                    core: src,
                    addr,
                    mode: WaitMode::MWait,
                    expected,
                    active: false,
                    valid: false,
                });
                self.activate_next(addr, mem, out, false, emit);
            }
            MemRequest::ScWait { addr, value } => {
                let pos = self.entries.iter().position(|e| {
                    e.core == src && e.addr == addr && e.active && e.mode == WaitMode::LrWait
                });
                match pos {
                    Some(idx) if self.entries[idx].valid => {
                        self.stats.scwait_success += 1;
                        emit(SyncEvent::ScResult {
                            core: src,
                            addr,
                            success: true,
                            wait: true,
                        });
                        mem.write_word(addr, value);
                        if self.slot.on_write(addr) {
                            self.stats.reservations_broken += 1;
                            emit(SyncEvent::ReservationBroken { addr });
                        }
                        self.entries.remove(idx);
                        out.push((src, MemResponse::ScWait { success: true }));
                        self.activate_next(addr, mem, out, true, emit);
                    }
                    Some(idx) => {
                        self.stats.scwait_failure += 1;
                        emit(SyncEvent::ScResult {
                            core: src,
                            addr,
                            success: false,
                            wait: true,
                        });
                        self.entries.remove(idx);
                        out.push((src, MemResponse::ScWait { success: false }));
                        self.activate_next(addr, mem, out, true, emit);
                    }
                    None => {
                        self.stats.scwait_failure += 1;
                        emit(SyncEvent::ScResult {
                            core: src,
                            addr,
                            success: false,
                            wait: true,
                        });
                        out.push((src, MemResponse::ScWait { success: false }));
                    }
                }
            }
            MemRequest::WakeUp { .. } => {
                debug_assert!(false, "WakeUp sent to a centralized wait-queue bank");
            }
        }
    }

    fn chaos_evict(&mut self, addr: Addr, emit: &mut dyn FnMut(SyncEvent)) -> bool {
        let mut evicted = false;
        if self.slot.on_write(addr) {
            self.stats.reservations_broken += 1;
            emit(SyncEvent::ReservationBroken { addr });
            evicted = true;
        }
        // Invalidate an active-and-valid lrwait head exactly as an
        // intervening write would; its scwait will fail and advance the
        // queue. Armed mwait monitors are deliberately left alone.
        if let Some(idx) = self.first_index_for(addr) {
            let entry = self.entries[idx];
            if entry.active && entry.valid && entry.mode == WaitMode::LrWait {
                self.entries[idx].valid = false;
                self.stats.reservations_broken += 1;
                emit(SyncEvent::ReservationBroken { addr });
                evicted = true;
            }
        }
        evicted
    }

    fn label(&self) -> String {
        if self.ideal {
            "LRSCwait_ideal".to_string()
        } else {
            format!("LRSCwait{}", self.capacity)
        }
    }

    fn stats(&self) -> &AdapterStats {
        &self.stats
    }

    fn is_quiescent(&self) -> bool {
        self.entries.is_empty()
    }

    fn save_state(&self, out: &mut StateWriter) {
        out.put_u32(self.capacity as u32);
        out.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            out.put_u32(e.core);
            out.put_u32(e.addr);
            out.put_u8(e.mode.encode());
            out.put_u32(e.expected);
            out.put_bool(e.active);
            out.put_bool(e.valid);
        }
        self.slot.save(out);
        self.stats.save(out);
    }

    fn load_state(&mut self, src: &mut StateReader<'_>) -> Result<(), StateError> {
        if src.take_u32()? as usize != self.capacity {
            return Err(StateError::Invalid("wait-queue capacity"));
        }
        let len = src.take_u32()? as usize;
        if len > self.capacity {
            return Err(StateError::Invalid("wait-queue occupancy"));
        }
        self.entries.clear();
        for _ in 0..len {
            self.entries.push(Entry {
                core: src.take_u32()?,
                addr: src.take_u32()?,
                mode: WaitMode::decode(src.take_u8()?)?,
                expected: src.take_u32()?,
                active: src.take_bool()?,
                valid: src.take_bool()?,
            });
        }
        self.slot = SingleSlotLrsc::load(src)?;
        self.stats = AdapterStats::load(src)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MapStorage;

    fn run(
        a: &mut WaitQueueAdapter,
        mem: &mut MapStorage,
        src: CoreId,
        req: MemRequest,
    ) -> Vec<(CoreId, MemResponse)> {
        let mut out = Vec::new();
        a.handle(src, &req, mem, &mut out);
        out
    }

    #[test]
    fn first_lrwait_served_immediately() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        mem.write_word(0x40, 5);
        let r = run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        assert_eq!(
            r,
            vec![(
                1,
                MemResponse::Wait {
                    value: 5,
                    reserved: true
                }
            )]
        );
    }

    #[test]
    fn second_lrwait_withheld_until_scwait() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        let r = run(&mut a, &mut mem, 2, MemRequest::LrWait { addr: 0x40 });
        assert!(r.is_empty(), "second core must sleep: {r:?}");
        // Core 1 closes its sequence; core 2 receives the new value.
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::ScWait {
                addr: 0x40,
                value: 9,
            },
        );
        assert_eq!(
            r,
            vec![
                (1, MemResponse::ScWait { success: true }),
                (
                    2,
                    MemResponse::Wait {
                        value: 9,
                        reserved: true
                    }
                ),
            ]
        );
        assert_eq!(a.occupancy(), 1);
        assert!(!a.is_quiescent());
        let r = run(
            &mut a,
            &mut mem,
            2,
            MemRequest::ScWait {
                addr: 0x40,
                value: 10,
            },
        );
        assert_eq!(r[0], (2, MemResponse::ScWait { success: true }));
        assert!(a.is_quiescent());
        assert_eq!(mem.read_word(0x40), 10);
    }

    #[test]
    fn independent_addresses_are_concurrent() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        let r1 = run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        let r2 = run(&mut a, &mut mem, 2, MemRequest::LrWait { addr: 0x80 });
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1, "different address must not queue");
    }

    #[test]
    fn full_queue_fails_fast() {
        let mut a = WaitQueueAdapter::new(1);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        let r = run(&mut a, &mut mem, 2, MemRequest::LrWait { addr: 0x40 });
        assert_eq!(
            r,
            vec![(
                2,
                MemResponse::Wait {
                    value: 0,
                    reserved: false
                }
            )]
        );
        assert_eq!(a.stats().wait_failfast, 1);
        // The failed core's scwait also fails and does not write.
        let r = run(
            &mut a,
            &mut mem,
            2,
            MemRequest::ScWait {
                addr: 0x40,
                value: 7,
            },
        );
        assert_eq!(r, vec![(2, MemResponse::ScWait { success: false })]);
        assert_eq!(mem.read_word(0x40), 0);
    }

    #[test]
    fn store_breaks_active_reservation() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        run(
            &mut a,
            &mut mem,
            3,
            MemRequest::Store {
                addr: 0x40,
                value: 99,
                mask: !0,
            },
        );
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::ScWait {
                addr: 0x40,
                value: 1,
            },
        );
        assert_eq!(r[0], (1, MemResponse::ScWait { success: false }));
        assert_eq!(mem.read_word(0x40), 99, "failed scwait must not write");
    }

    #[test]
    fn failed_scwait_still_advances_queue() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        run(&mut a, &mut mem, 2, MemRequest::LrWait { addr: 0x40 });
        run(
            &mut a,
            &mut mem,
            3,
            MemRequest::Store {
                addr: 0x40,
                value: 99,
                mask: !0,
            },
        );
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::ScWait {
                addr: 0x40,
                value: 1,
            },
        );
        assert_eq!(
            r,
            vec![
                (1, MemResponse::ScWait { success: false }),
                (
                    2,
                    MemResponse::Wait {
                        value: 99,
                        reserved: true
                    }
                ),
            ]
        );
    }

    #[test]
    fn fifo_order_across_three_cores() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 5, MemRequest::LrWait { addr: 0x40 });
        assert!(run(&mut a, &mut mem, 6, MemRequest::LrWait { addr: 0x40 }).is_empty());
        assert!(run(&mut a, &mut mem, 7, MemRequest::LrWait { addr: 0x40 }).is_empty());
        let r = run(
            &mut a,
            &mut mem,
            5,
            MemRequest::ScWait {
                addr: 0x40,
                value: 1,
            },
        );
        assert_eq!(r[1].0, 6, "service order must be FIFO");
        let r = run(
            &mut a,
            &mut mem,
            6,
            MemRequest::ScWait {
                addr: 0x40,
                value: 2,
            },
        );
        assert_eq!(r[1].0, 7);
    }

    #[test]
    fn mwait_immediate_when_value_differs() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        mem.write_word(0x40, 3);
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::MWait {
                addr: 0x40,
                expected: 0,
            },
        );
        assert_eq!(
            r,
            vec![(
                1,
                MemResponse::Wait {
                    value: 3,
                    reserved: false
                }
            )]
        );
        assert!(a.is_quiescent());
    }

    #[test]
    fn mwait_sleeps_until_write() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::MWait {
                addr: 0x40,
                expected: 0,
            },
        );
        assert!(r.is_empty());
        let r = run(
            &mut a,
            &mut mem,
            2,
            MemRequest::Store {
                addr: 0x40,
                value: 8,
                mask: !0,
            },
        );
        assert_eq!(
            r,
            vec![
                (
                    1,
                    MemResponse::Wait {
                        value: 8,
                        reserved: true
                    }
                ),
                (2, MemResponse::StoreAck),
            ]
        );
        assert!(a.is_quiescent());
    }

    #[test]
    fn mwait_queue_drains_fully_on_one_write() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        for core in 1..=3 {
            assert!(run(
                &mut a,
                &mut mem,
                core,
                MemRequest::MWait {
                    addr: 0x40,
                    expected: 0
                }
            )
            .is_empty());
        }
        let r = run(
            &mut a,
            &mut mem,
            9,
            MemRequest::Store {
                addr: 0x40,
                value: 1,
                mask: !0,
            },
        );
        let woken: Vec<CoreId> = r
            .iter()
            .filter(|(_, resp)| matches!(resp, MemResponse::Wait { .. }))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(woken, vec![1, 2, 3], "whole queue wakes in order");
        assert!(a.is_quiescent());
    }

    #[test]
    fn amo_fires_mwait() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(
            &mut a,
            &mut mem,
            1,
            MemRequest::MWait {
                addr: 0x40,
                expected: 0,
            },
        );
        let r = run(
            &mut a,
            &mut mem,
            2,
            MemRequest::Amo {
                addr: 0x40,
                op: crate::RmwOp::Add,
                operand: 4,
            },
        );
        assert!(r.contains(&(
            1,
            MemResponse::Wait {
                value: 4,
                reserved: true
            }
        )));
    }

    #[test]
    fn plain_lrsc_still_works() {
        let mut a = WaitQueueAdapter::new(4);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::Lr { addr: 0x40 });
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::Sc {
                addr: 0x40,
                value: 3,
            },
        );
        assert_eq!(r[0], (1, MemResponse::Sc { success: true }));
    }

    #[test]
    fn scwait_success_fires_mwait_on_same_address() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        run(
            &mut a,
            &mut mem,
            2,
            MemRequest::MWait {
                addr: 0x40,
                expected: 0,
            },
        );
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::ScWait {
                addr: 0x40,
                value: 5,
            },
        );
        assert!(
            r.contains(&(
                2,
                MemResponse::Wait {
                    value: 5,
                    reserved: true
                }
            )),
            "mwait behind an lrwait head wakes when the scwait writes: {r:?}"
        );
    }

    #[test]
    fn chaos_evict_breaks_active_lrwait_head() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(&mut a, &mut mem, 1, MemRequest::LrWait { addr: 0x40 });
        run(&mut a, &mut mem, 2, MemRequest::LrWait { addr: 0x40 });
        let mut events = Vec::new();
        assert!(a.chaos_evict(0x40, &mut |e| events.push(e)));
        assert_eq!(events, vec![SyncEvent::ReservationBroken { addr: 0x40 }]);
        assert_eq!(a.stats().reservations_broken, 1);
        // The evicted head's scwait fails but still advances the queue.
        let r = run(
            &mut a,
            &mut mem,
            1,
            MemRequest::ScWait {
                addr: 0x40,
                value: 7,
            },
        );
        assert_eq!(
            r,
            vec![
                (1, MemResponse::ScWait { success: false }),
                (
                    2,
                    MemResponse::Wait {
                        value: 0,
                        reserved: true
                    }
                ),
            ]
        );
        assert_eq!(mem.read_word(0x40), 0, "failed scwait must not write");
    }

    #[test]
    fn chaos_evict_never_touches_armed_mwait() {
        let mut a = WaitQueueAdapter::new(8);
        let mut mem = MapStorage::new();
        run(
            &mut a,
            &mut mem,
            1,
            MemRequest::MWait {
                addr: 0x40,
                expected: 0,
            },
        );
        let mut events = Vec::new();
        assert!(!a.chaos_evict(0x40, &mut |e| events.push(e)));
        assert!(events.is_empty());
        // The monitor still fires on a real write.
        let r = run(
            &mut a,
            &mut mem,
            2,
            MemRequest::Store {
                addr: 0x40,
                value: 8,
                mask: !0,
            },
        );
        assert!(r.contains(&(
            1,
            MemResponse::Wait {
                value: 8,
                reserved: true
            }
        )));
    }

    #[test]
    fn labels() {
        assert_eq!(WaitQueueAdapter::new(8).label(), "LRSCwait8");
        assert_eq!(WaitQueueAdapter::ideal(256).label(), "LRSCwait_ideal");
        assert_eq!(WaitQueueAdapter::ideal(256).capacity(), 256);
    }
}
