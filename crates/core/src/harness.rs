//! Deterministic protocol harness: one bank adapter, `n` cores with Qnodes,
//! and randomly interleaved (but per-channel FIFO) message delivery.
//!
//! The harness is the protocol-level fuzzing substrate used by the property
//! tests: it explores message-delivery interleavings that a cycle-accurate
//! simulator would only reach under specific timing, while preserving the
//! one ordering guarantee the protocol needs (FIFO per channel). It also
//! tracks the mutual-exclusion and FIFO-service invariants online.

use std::collections::VecDeque;

use crate::adapter::SyncAdapter;
use crate::msg::{Addr, CoreId, MemRequest, MemResponse, WaitMode};
use crate::qnode::Qnode;
use crate::storage::{MapStorage, WordStorage};

/// Tiny deterministic RNG (SplitMix64) so the harness has no external
/// dependencies and every failure reproduces from a seed.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Violation of a protocol invariant detected by the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

/// Single-bank protocol harness.
pub struct Harness {
    adapter: Box<dyn SyncAdapter>,
    qnodes: Vec<Qnode>,
    mem: MapStorage,
    /// Per-core core→bank channel (requests, including bounced WakeUps).
    to_bank: Vec<VecDeque<MemRequest>>,
    /// Per-core bank→core channel (responses and SuccessorUpdates).
    to_core: Vec<VecDeque<MemResponse>>,
    /// Responses forwarded past the Qnode, awaiting test consumption.
    delivered: Vec<VecDeque<MemResponse>>,
    /// Current `lrwait` reservation holder per address.
    holders: Vec<(Addr, CoreId)>,
    /// Addresses each core currently holds (for release tracking).
    holding: Vec<Option<Addr>>,
    /// Order in which cores were granted the reservation, per address.
    grant_log: Vec<(Addr, CoreId)>,
    /// Order in which `lrwait` requests were accepted (enqueued), per address.
    enqueue_log: Vec<(Addr, CoreId)>,
    violations: Vec<InvariantViolation>,
}

impl Harness {
    /// Creates a harness over `adapter` with `num_cores` cores.
    #[must_use]
    pub fn new(adapter: Box<dyn SyncAdapter>, num_cores: usize) -> Harness {
        Harness {
            adapter,
            qnodes: vec![Qnode::new(); num_cores],
            mem: MapStorage::new(),
            to_bank: vec![VecDeque::new(); num_cores],
            to_core: vec![VecDeque::new(); num_cores],
            delivered: vec![VecDeque::new(); num_cores],
            holders: Vec::new(),
            holding: vec![None; num_cores],
            grant_log: Vec::new(),
            enqueue_log: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Direct access to backing memory (setup / final assertions).
    pub fn memory(&mut self) -> &mut MapStorage {
        &mut self.mem
    }

    /// Reads a word from backing memory.
    #[must_use]
    pub fn read_word(&self, addr: Addr) -> u32 {
        self.mem.read_word(addr)
    }

    /// Invariant violations observed so far.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Sequence of `(addr, core)` reservation grants.
    #[must_use]
    pub fn grant_log(&self) -> &[(Addr, CoreId)] {
        &self.grant_log
    }

    /// Sequence of `(addr, core)` accepted `lrwait` enqueues.
    #[must_use]
    pub fn enqueue_log(&self) -> &[(Addr, CoreId)] {
        &self.enqueue_log
    }

    /// Core issues a request (through its Qnode) onto its channel.
    pub fn send(&mut self, core: CoreId, req: MemRequest) {
        let wakeup = self.qnodes[core as usize].on_core_request(&req);
        self.to_bank[core as usize].push_back(req);
        if let Some(wk) = wakeup {
            self.to_bank[core as usize].push_back(wk);
        }
    }

    /// Takes the next response delivered to `core`, if any.
    pub fn take_delivered(&mut self, core: CoreId) -> Option<MemResponse> {
        self.delivered[core as usize].pop_front()
    }

    /// Whether any message is still in flight.
    #[must_use]
    pub fn has_in_flight(&self) -> bool {
        self.to_bank.iter().any(|q| !q.is_empty()) || self.to_core.iter().any(|q| !q.is_empty())
    }

    /// Delivers one randomly chosen in-flight message. Returns `false` when
    /// nothing was in flight.
    pub fn step(&mut self, rng: &mut SplitMix64) -> bool {
        let n = self.to_bank.len();
        let mut candidates: Vec<usize> = Vec::with_capacity(2 * n);
        for c in 0..n {
            if !self.to_bank[c].is_empty() {
                candidates.push(c);
            }
            if !self.to_core[c].is_empty() {
                candidates.push(n + c);
            }
        }
        if candidates.is_empty() {
            return false;
        }
        let pick = candidates[rng.below(candidates.len())];
        if pick < n {
            self.deliver_request(pick as CoreId);
        } else {
            self.deliver_response((pick - n) as CoreId);
        }
        true
    }

    /// Runs until all channels drain. Panics after `limit` steps (deadlock
    /// guard for tests).
    pub fn run_to_quiescence(&mut self, rng: &mut SplitMix64, limit: usize) {
        for _ in 0..limit {
            if !self.step(rng) {
                return;
            }
        }
        panic!("harness did not quiesce within {limit} steps");
    }

    fn deliver_request(&mut self, core: CoreId) {
        let req = self.to_bank[core as usize]
            .pop_front()
            .expect("candidate channel must be non-empty");
        // The critical sequence ends when the scwait reaches the bank (its
        // linearization point), not when the response returns — release the
        // reservation holder here so a successor granted in the same bank
        // step is not misreported as overlapping.
        if let MemRequest::ScWait { addr, .. } = req {
            if self.holding[core as usize] == Some(addr) {
                self.holding[core as usize] = None;
                self.holders.retain(|&(a, c)| !(a == addr && c == core));
            }
        }
        let is_lrwait = matches!(req, MemRequest::LrWait { .. });
        let mut out = Vec::new();
        self.adapter.handle(core, &req, &mut self.mem, &mut out);
        if is_lrwait {
            let addr = req.addr();
            let failed_fast = out.iter().any(|(c, r)| {
                *c == core
                    && matches!(
                        r,
                        MemResponse::Wait {
                            reserved: false,
                            ..
                        }
                    )
            });
            if !failed_fast {
                self.enqueue_log.push((addr, core));
            }
        }
        for (dest, resp) in out {
            self.to_core[dest as usize].push_back(resp);
        }
    }

    fn deliver_response(&mut self, core: CoreId) {
        let resp = self.to_core[core as usize]
            .pop_front()
            .expect("candidate channel must be non-empty");
        let session = self.qnodes[core as usize].session_info();
        let output = self.qnodes[core as usize].on_response(resp);
        if let Some(delivered) = output.deliver {
            self.track_invariants(core, &delivered, session);
            self.delivered[core as usize].push_back(delivered);
        }
        if let Some(wakeup) = output.wakeup {
            self.to_bank[core as usize].push_back(wakeup);
        }
    }

    fn track_invariants(
        &mut self,
        core: CoreId,
        resp: &MemResponse,
        session: Option<(Addr, WaitMode)>,
    ) {
        if let MemResponse::Wait { reserved: true, .. } = *resp {
            if let Some((addr, WaitMode::LrWait)) = session {
                if let Some(&(a, holder)) = self.holders.iter().find(|(a, _)| *a == addr) {
                    self.violations.push(InvariantViolation(format!(
                        "mutual exclusion: core {core} granted {a:#x} while core {holder} holds it"
                    )));
                }
                self.holders.push((addr, core));
                self.holding[core as usize] = Some(addr);
                self.grant_log.push((addr, core));
            }
        }
    }
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("adapter", &self.adapter.label())
            .field("cores", &self.qnodes.len())
            .field("violations", &self.violations.len())
            .finish()
    }
}

/// Drives `cores` cores through `ops_per_core` atomic increments of `addr`
/// using the `lrwait`/`scwait` sequence (with software retry on failure),
/// returning the final counter value. Used by tests on every architecture.
///
/// # Panics
///
/// Panics if the harness fails to quiesce (protocol deadlock) or a core
/// observes an impossible response.
pub fn drive_rmw_increments(
    harness: &mut Harness,
    rng: &mut SplitMix64,
    cores: &[CoreId],
    addr: Addr,
    ops_per_core: u32,
) -> u32 {
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum CoreState {
        Idle,
        WaitingLr,
        WaitingSc,
        Done,
    }
    let mut state = vec![(CoreState::Idle, 0u32); harness.qnodes.len()];
    let step_limit = 200_000 + 10_000 * cores.len() * ops_per_core as usize;

    for _ in 0..step_limit {
        // Issue phase: every idle core with work left sends an lrwait.
        for &c in cores {
            let (s, done) = state[c as usize];
            if s == CoreState::Idle && done < ops_per_core {
                harness.send(c, MemRequest::LrWait { addr });
                state[c as usize].0 = CoreState::WaitingLr;
            }
        }
        // Consume phase.
        for &c in cores {
            while let Some(resp) = harness.take_delivered(c) {
                let entry = &mut state[c as usize];
                match (entry.0, resp) {
                    (CoreState::WaitingLr, MemResponse::Wait { value, .. }) => {
                        // Software computes value+1 and tries to commit —
                        // even after a fail-fast response, mirroring the
                        // retry loop real kernels use.
                        harness.send(
                            c,
                            MemRequest::ScWait {
                                addr,
                                value: value.wrapping_add(1),
                            },
                        );
                        entry.0 = CoreState::WaitingSc;
                    }
                    (CoreState::WaitingSc, MemResponse::ScWait { success }) => {
                        if success {
                            entry.1 += 1;
                        }
                        entry.0 = if entry.1 >= ops_per_core {
                            CoreState::Done
                        } else {
                            CoreState::Idle
                        };
                    }
                    (s, r) => panic!("core {c}: unexpected response {r:?} in state {s:?}"),
                }
            }
        }
        if cores
            .iter()
            .all(|&c| state[c as usize].0 == CoreState::Done)
        {
            harness.run_to_quiescence(rng, 100_000);
            return harness.read_word(addr);
        }
        if !harness.step(rng) {
            // Channels drained: fine if some core went idle during the
            // consume phase (it will issue next iteration); anything else is
            // a lost wakeup.
            let idle_with_work = cores
                .iter()
                .any(|&c| state[c as usize].0 == CoreState::Idle);
            if idle_with_work {
                continue;
            }
            let stuck: Vec<_> = cores
                .iter()
                .map(|&c| (c, state[c as usize]))
                .filter(|(_, (s, _))| *s != CoreState::Done)
                .collect();
            panic!(
                "protocol stalled with cores {stuck:?} incomplete; adapter {:?}",
                harness.adapter
            );
        }
    }
    panic!("drive_rmw_increments exceeded step limit");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::SyncArch;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn increments_conserved_on_colibri() {
        let arch = SyncArch::Colibri { queues: 2 };
        let mut h = Harness::new(arch.build(4), 4);
        let mut rng = SplitMix64::new(7);
        let total = drive_rmw_increments(&mut h, &mut rng, &[0, 1, 2, 3], 0x40, 25);
        assert_eq!(total, 100);
        assert!(h.violations().is_empty(), "{:?}", h.violations());
    }

    #[test]
    fn increments_conserved_on_ideal_queue() {
        let arch = SyncArch::LrscWaitIdeal;
        let mut h = Harness::new(arch.build(4), 4);
        let mut rng = SplitMix64::new(11);
        let total = drive_rmw_increments(&mut h, &mut rng, &[0, 1, 2, 3], 0x40, 25);
        assert_eq!(total, 100);
        assert!(h.violations().is_empty());
    }

    #[test]
    fn increments_conserved_on_tiny_queue_with_failfast() {
        // q=1 forces constant fail-fast retries; totals must still hold.
        let arch = SyncArch::LrscWait { slots: 1 };
        let mut h = Harness::new(arch.build(4), 4);
        let mut rng = SplitMix64::new(13);
        let total = drive_rmw_increments(&mut h, &mut rng, &[0, 1, 2, 3], 0x40, 10);
        assert_eq!(total, 40);
        assert!(h.violations().is_empty());
    }

    #[test]
    fn colibri_grants_follow_enqueue_order() {
        let arch = SyncArch::Colibri { queues: 1 };
        let mut h = Harness::new(arch.build(8), 8);
        let mut rng = SplitMix64::new(3);
        drive_rmw_increments(&mut h, &mut rng, &[0, 1, 2, 3, 4, 5, 6, 7], 0x40, 5);
        // Starvation freedom: grant order equals accepted-enqueue order.
        assert_eq!(h.grant_log(), h.enqueue_log());
    }
}
