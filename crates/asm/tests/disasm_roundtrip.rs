//! Seeded four-stage round trip over **all** ISA instruction forms:
//! `encode → decode → disasm → re-assemble` must agree — the binary
//! encoding, the decoder, the disassembler and the assembler describe
//! one and the same instruction.
//!
//! PC-relative forms (`jal`, branches) disassemble to a *relative*
//! offset while the assembler consumes *absolute* targets, so the
//! harness rewrites the final operand to `text_base + offset` before
//! re-assembling; everything else round-trips textually untouched.
//!
//! Uses the same dependency-free SplitMix64 generator as the other
//! seeded suites, so any failure reproduces exactly from the seed.

use lrscwait_asm::{Assembler, DEFAULT_TEXT_BASE};
use lrscwait_isa::{
    decode, disasm, encode, AluOp, AmoOp, BranchOp, Csr, CsrOp, Instr, MemWidth, Reg,
};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.below((hi - lo) as u64) as i32)
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(32) as u8)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

const ALU_RR: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

const ALU_IMM: [AluOp; 6] = [
    AluOp::Add,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Or,
    AluOp::And,
];

const SHIFTS: [AluOp; 3] = [AluOp::Sll, AluOp::Srl, AluOp::Sra];

const BRANCHES: [BranchOp; 6] = [
    BranchOp::Eq,
    BranchOp::Ne,
    BranchOp::Lt,
    BranchOp::Ge,
    BranchOp::Ltu,
    BranchOp::Geu,
];

const AMOS: [AmoOp; 14] = [
    AmoOp::Lr,
    AmoOp::Sc,
    AmoOp::Swap,
    AmoOp::Add,
    AmoOp::Xor,
    AmoOp::And,
    AmoOp::Or,
    AmoOp::Min,
    AmoOp::Max,
    AmoOp::Minu,
    AmoOp::Maxu,
    AmoOp::LrWait,
    AmoOp::ScWait,
    AmoOp::MWait,
];

const WIDTHS: [(MemWidth, bool); 5] = [
    (MemWidth::Byte, true),
    (MemWidth::Half, true),
    (MemWidth::Word, true),
    (MemWidth::Byte, false),
    (MemWidth::Half, false),
];

/// Every instruction form the ISA defines, exercised by form index so a
/// generator bug cannot silently drop one.
const NUM_FORMS: u64 = 14;

fn gen_form(form: u64, rng: &mut Rng) -> Instr {
    match form {
        0 => Instr::Lui {
            rd: rng.reg(),
            imm: (rng.next() as u32) & 0xFFFF_F000,
        },
        1 => Instr::Auipc {
            rd: rng.reg(),
            imm: (rng.next() as u32) & 0xFFFF_F000,
        },
        2 => Instr::Jal {
            rd: rng.reg(),
            // Keep targets inside the 32-bit address space around the
            // default text base.
            offset: rng.range(-(1 << 19), 1 << 19) & !1,
        },
        3 => Instr::Jalr {
            rd: rng.reg(),
            rs1: rng.reg(),
            offset: rng.range(-2048, 2048),
        },
        4 => Instr::Branch {
            op: rng.pick(&BRANCHES),
            rs1: rng.reg(),
            rs2: rng.reg(),
            offset: rng.range(-4096, 4096) & !1,
        },
        5 => {
            let (width, signed) = rng.pick(&WIDTHS);
            Instr::Load {
                width,
                signed,
                rd: rng.reg(),
                rs1: rng.reg(),
                offset: rng.range(-2048, 2048),
            }
        }
        6 => {
            let (width, _) = rng.pick(&WIDTHS);
            Instr::Store {
                width,
                rs2: rng.reg(),
                rs1: rng.reg(),
                offset: rng.range(-2048, 2048),
            }
        }
        7 => Instr::OpImm {
            op: rng.pick(&ALU_IMM),
            rd: rng.reg(),
            rs1: rng.reg(),
            imm: rng.range(-2048, 2048),
        },
        8 => Instr::OpImm {
            op: rng.pick(&SHIFTS),
            rd: rng.reg(),
            rs1: rng.reg(),
            imm: rng.range(0, 32),
        },
        9 => Instr::Op {
            op: rng.pick(&ALU_RR),
            rd: rng.reg(),
            rs1: rng.reg(),
            rs2: rng.reg(),
        },
        10 => rng.pick(&[Instr::Fence, Instr::Ecall, Instr::Ebreak]),
        11 => Instr::Csr {
            op: rng.pick(&[CsrOp::ReadWrite, CsrOp::ReadSet, CsrOp::ReadClear]),
            rd: rng.reg(),
            rs1: rng.reg(),
            csr: (rng.next() as u16) & 0xFFF,
            imm_form: false,
        },
        12 => Instr::Csr {
            op: rng.pick(&[CsrOp::ReadWrite, CsrOp::ReadSet, CsrOp::ReadClear]),
            rd: rng.reg(),
            rs1: rng.reg(),
            csr: (rng.next() as u16) & 0xFFF,
            imm_form: true,
        },
        _ => {
            let op = rng.pick(&AMOS);
            Instr::Amo {
                op,
                rd: rng.reg(),
                rs1: rng.reg(),
                rs2: if matches!(op, AmoOp::Lr | AmoOp::LrWait) {
                    Reg::ZERO
                } else {
                    rng.reg()
                },
            }
        }
    }
}

/// Rewrites PC-relative operands from the relative offset `disasm`
/// prints to the absolute target the assembler expects (the instruction
/// sits alone at `DEFAULT_TEXT_BASE`).
fn assembler_source(instr: &Instr, text: &str) -> String {
    match *instr {
        Instr::Jal { offset, .. } | Instr::Branch { offset, .. } => {
            let target = DEFAULT_TEXT_BASE.wrapping_add(offset as u32);
            let (head, _) = text
                .rsplit_once(' ')
                .expect("jal/branch disasm has operands");
            format!("{head} {target:#x}")
        }
        _ => text.to_string(),
    }
}

#[test]
fn encode_decode_disasm_reassemble_agree() {
    let mut rng = Rng(0xC0FF_EE00_5EED);
    let assembler = Assembler::new();
    for case in 0..2048u64 {
        let instr = gen_form(case % NUM_FORMS, &mut rng);

        // Stage 1+2: binary round trip.
        let word = encode(&instr);
        let decoded = decode(word).expect("encoded instruction must decode");
        assert_eq!(decoded, instr, "case {case}: encode/decode");

        // Stage 3+4: textual round trip through the real assembler.
        let text = disasm(&decoded);
        let source = assembler_source(&instr, &text);
        let program = assembler
            .assemble(&source)
            .unwrap_or_else(|e| panic!("case {case}: `{source}` does not assemble: {e}"));
        assert_eq!(
            program.text.len(),
            1,
            "case {case}: `{source}` must assemble to one word"
        );
        assert_eq!(
            program.text[0], word,
            "case {case}: `{source}` re-assembles to {:#010x}, expected {word:#010x} ({instr:?})",
            program.text[0]
        );
    }
}

/// Named CSRs disassemble to their names and re-assemble through them.
#[test]
fn named_csrs_round_trip_textually() {
    let assembler = Assembler::new();
    for csr in [Csr::MHartId, Csr::Cycle, Csr::CycleH] {
        let instr = Instr::Csr {
            op: CsrOp::ReadSet,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            csr: csr.address(),
            imm_form: false,
        };
        let text = disasm(&instr);
        assert!(text.contains(csr.name()), "`{text}` must use the CSR name");
        let program = assembler.assemble(&text).expect("assembles");
        assert_eq!(program.text[0], encode(&instr));
    }
}
