//! Integration tests for the assembler: layout, pseudo-expansion, symbols,
//! error reporting, and full-kernel round trips through the disassembler.

use lrscwait_asm::{assemble, Assembler, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE};
use lrscwait_isa::{decode, disasm};

fn disasm_all(program: &lrscwait_asm::Program) -> Vec<String> {
    program
        .text
        .iter()
        .map(|&w| disasm(&decode(w).expect("assembled word must decode")))
        .collect()
}

#[test]
fn minimal_program() {
    let p = assemble("nop\necall\n").unwrap();
    assert_eq!(p.text.len(), 2);
    assert_eq!(p.text_base, DEFAULT_TEXT_BASE);
    assert_eq!(p.entry, DEFAULT_TEXT_BASE);
    assert_eq!(disasm_all(&p), vec!["addi zero, zero, 0", "ecall"]);
}

#[test]
fn entry_follows_start_label() {
    let p = assemble("nop\n_start: nop\necall\n").unwrap();
    assert_eq!(p.entry, p.text_base + 4);
}

#[test]
fn labels_and_branches() {
    let p = assemble(
        r#"
        _start:
            li   t0, 4
        loop:
            addi t0, t0, -1
            bnez t0, loop
            j    done
            nop
        done:
            ecall
        "#,
    )
    .unwrap();
    let text = disasm_all(&p);
    // bnez expands to bne t0, zero, -4 (backwards to loop)
    assert!(text.iter().any(|t| t == "bne t0, zero, -4"), "{text:?}");
    // j done skips the nop: offset +8
    assert!(text.iter().any(|t| t == "jal zero, 8"), "{text:?}");
}

#[test]
fn li_small_is_one_instr_large_is_two() {
    let p = assemble("li a0, 100\nli a1, 0x12345\nli a2, -1\n").unwrap();
    let text = disasm_all(&p);
    assert_eq!(text[0], "addi a0, zero, 100");
    assert_eq!(text[1], "lui a1, 0x12");
    assert_eq!(text[2], "addi a1, a1, 837"); // 0x12345 = 0x12000 + 0x345
    assert_eq!(text[3], "addi a2, zero, -1");
    assert_eq!(p.text.len(), 4);
}

#[test]
fn li_edge_values_round_trip() {
    // Execute the lui+addi expansion mentally for tricky values.
    for value in [
        0u32,
        1,
        2047,
        2048,
        0x800,
        0xFFF,
        0x1000,
        0xFFFF_FFFF,
        0x8000_0000,
        0x7FFF_FFFF,
    ] {
        let p = assemble(&format!("li a0, {value:#x}\n")).unwrap();
        // Reconstruct the value from the encoded expansion.
        let mut acc: u32 = 0;
        for &w in &p.text {
            match decode(w).unwrap() {
                lrscwait_isa::Instr::Lui { imm, .. } => acc = imm,
                lrscwait_isa::Instr::OpImm { imm, .. } => acc = acc.wrapping_add(imm as u32),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(acc, value, "li {value:#x}");
    }
}

#[test]
fn la_of_data_label() {
    let p = assemble(
        r#"
        .text
        _start: la a0, table
        .data
        table: .word 1, 2, 3
        "#,
    )
    .unwrap();
    assert_eq!(p.symbol("table"), DEFAULT_DATA_BASE);
    assert_eq!(p.data, vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
    // la expands to exactly two instructions.
    assert_eq!(p.text.len(), 2);
}

#[test]
fn bss_layout_follows_data() {
    let p = assemble(
        r#"
        .data
        a: .word 7
        .bss
        buf: .space 128
        tail: .space 4
        "#,
    )
    .unwrap();
    assert_eq!(p.symbol("a"), DEFAULT_DATA_BASE);
    let bss = p.symbol("buf");
    assert!(bss >= DEFAULT_DATA_BASE + 4);
    assert_eq!(bss % 64, 0, "bss is 64-byte aligned");
    assert_eq!(p.symbol("tail"), bss + 128);
    assert_eq!(p.bss_size, 132);
}

#[test]
fn forward_reference_li_uses_two_words() {
    // `li` of a forward label must still assemble (sized as two words).
    let p = assemble(
        r#"
        _start: li a0, buf
        ecall
        .bss
        buf: .space 4
        "#,
    )
    .unwrap();
    assert_eq!(p.text.len(), 3); // lui+addi+ecall
}

#[test]
fn equ_and_define_constants() {
    let p = Assembler::new()
        .define("N", 32)
        .assemble(
            r#"
            .equ STRIDE, N * 4
            _start: li a0, STRIDE
            "#,
        )
        .unwrap();
    let text = disasm_all(&p);
    assert_eq!(text[0], "addi a0, zero, 128");
}

#[test]
fn align_pads_with_nops_in_text() {
    let p = assemble("nop\n.align 4\ntarget: nop\n").unwrap();
    assert_eq!(p.symbol("target") % 16, 0);
    assert_eq!(p.text.len(), 5); // nop + 3 pad nops + target nop
}

#[test]
fn align_in_data() {
    let p = assemble(
        r#"
        .data
        a: .word 1
        .align 6
        b: .word 2
        "#,
    )
    .unwrap();
    assert_eq!(p.symbol("b") % 64, 0);
}

#[test]
fn atomics_and_custom_instructions() {
    let p = assemble(
        r#"
        lr.w     t0, (a0)
        sc.w     t1, t0, (a0)
        lrwait.w t0, (a0)
        scwait.w t1, t0, (a0)
        mwait.w  t2, t3, (a1)
        amoadd.w t0, t1, (a2)
        "#,
    )
    .unwrap();
    assert_eq!(
        disasm_all(&p),
        vec![
            "lr.w t0, (a0)",
            "sc.w t1, t0, (a0)",
            "lrwait.w t0, (a0)",
            "scwait.w t1, t0, (a0)",
            "mwait.w t2, t3, (a1)",
            "amoadd.w t0, t1, (a2)",
        ]
    );
}

#[test]
fn csr_access_forms() {
    let p = assemble(
        r#"
        csrr a0, mhartid
        rdcycle a1
        rdhartid a2
        csrrs a3, cycle, zero
        "#,
    )
    .unwrap();
    let text = disasm_all(&p);
    assert_eq!(text[0], "csrrs a0, mhartid, zero");
    assert_eq!(text[1], "csrrs a1, cycle, zero");
    assert_eq!(text[2], "csrrs a2, mhartid, zero");
    assert_eq!(text[3], "csrrs a3, cycle, zero");
}

#[test]
fn memory_operand_forms() {
    let p = assemble(
        r#"
        .equ OFF, 8
        lw a0, (a1)
        lw a0, 4(a1)
        lw a0, OFF(a1)
        sw a0, OFF*2(a1)
        "#,
    )
    .unwrap();
    let text = disasm_all(&p);
    assert_eq!(text[0], "lw a0, 0(a1)");
    assert_eq!(text[1], "lw a0, 4(a1)");
    assert_eq!(text[2], "lw a0, 8(a1)");
    assert_eq!(text[3], "sw a0, 16(a1)");
}

#[test]
fn comments_and_separators() {
    let p = assemble("nop # comment\nnop // another\nnop; nop ; nop\n").unwrap();
    assert_eq!(p.text.len(), 5);
}

#[test]
fn multiple_labels_one_line() {
    let p = assemble("a: b: c: nop\n").unwrap();
    assert_eq!(p.symbol("a"), p.symbol("b"));
    assert_eq!(p.symbol("b"), p.symbol("c"));
}

#[test]
fn word_in_text_section() {
    let p = assemble(".text\ntable: .word 0xdeadbeef, 42\n").unwrap();
    assert_eq!(p.text, vec![0xdead_beef, 42]);
}

#[test]
fn error_cases_report_lines() {
    let cases = [
        ("nop\nbadop a0\n", 2, "unknown mnemonic"),
        ("addi a0, a1\n", 1, "expects 3"),
        ("lw a0, 4(q9)\n", 1, "unknown register"),
        ("j nowhere\n", 1, "undefined symbol"),
        ("addi a0, a0, 5000\n", 1, "12 bits"),
        (".data\nx: .word 1\nx: .word 2\n", 3, "duplicate"),
        (".data\nnop\n", 2, "outside .text"),
        (".bss\nv: .word 3\n", 2, "not allowed"),
        (".unknown 3\n", 1, "unknown directive"),
        ("slli a0, a0, 40\n", 1, "out of range"),
    ];
    for (src, line, needle) in cases {
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, line, "source: {src}");
        assert!(
            e.message.contains(needle),
            "error `{}` should mention `{needle}`",
            e.message
        );
    }
}

#[test]
fn branch_out_of_range_detected() {
    let mut src = String::from("_start: beq a0, a1, far\n");
    for _ in 0..2000 {
        src.push_str("nop\n");
    }
    src.push_str("far: ecall\n");
    let e = assemble(&src).unwrap_err();
    assert!(e.message.contains("out of range"), "{}", e.message);
}

#[test]
fn custom_bases() {
    let p = Assembler::new()
        .text_base(0x1000)
        .data_base(0x2000)
        .assemble(".text\n_start: nop\n.data\nv: .word 9\n")
        .unwrap();
    assert_eq!(p.entry, 0x1000);
    assert_eq!(p.symbol("v"), 0x2000);
}

#[test]
fn source_lines_track_words() {
    let p = assemble("nop\nli a0, 0x12345\nnop\n").unwrap();
    assert_eq!(p.source_lines, vec![1, 2, 2, 3]);
}

#[test]
fn program_disassemble_helper() {
    let p = assemble("nop\necall\n").unwrap();
    let listing = p.disassemble();
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].0, p.text_base);
    assert_eq!(listing[1].2, "ecall");
}

#[test]
fn every_assembled_word_decodes() {
    // Generate random but valid programs and confirm every emitted word
    // decodes (i.e. the assembler never emits illegal encodings). The
    // deterministic LCG seeds make any failure reproduce exactly.
    for seed in 1u64..=64 {
        let mut state = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 1 + next() % 200;
        let mut src = String::from("_start:\n");
        for _ in 0..n {
            match next() % 8 {
                0 => src.push_str("addi a0, a0, 1\n"),
                1 => src.push_str(&format!("li t0, {}\n", next() as u32)),
                2 => src.push_str("amoadd.w t1, t0, (a1)\n"),
                3 => src.push_str("lrwait.w t0, (a1)\n"),
                4 => src.push_str("mul s0, s1, s2\n"),
                5 => src.push_str("lw a2, 8(sp)\n"),
                6 => src.push_str("sw a2, 12(sp)\n"),
                _ => src.push_str("nop\n"),
            }
        }
        src.push_str("ecall\n");
        let p = assemble(&src).unwrap();
        for &w in &p.text {
            assert!(decode(w).is_ok(), "seed {seed}: {w:#010x} must decode");
        }
    }
}
