//! Two-pass RISC-V assembler for the LRSCwait simulator.
//!
//! Assembles the RV32IMA + Xlrscwait subset defined by
//! [`lrscwait-isa`](../lrscwait_isa/index.html) into a loadable [`Program`]
//! image. All benchmark kernels in this repository are real assembly run
//! through this assembler, so the instruction-level granularity of the
//! paper's bare-metal benchmarks is preserved.
//!
//! # Supported syntax
//!
//! * Sections: `.text`, `.data`, `.bss` (bss is laid out after data).
//! * Data directives: `.word e1, e2, …`, `.space n` / `.zero n`,
//!   `.align p2` (power-of-two byte alignment), `.equ name, expr` /
//!   `.set name, expr`, `.global` (accepted, ignored).
//! * Labels (`name:`), multiple per line, `#`/`//` comments, `;` separators.
//! * Full RV32IMA mnemonics plus `lrwait.w`, `scwait.w`, `mwait.w`.
//! * Pseudo-instructions: `nop`, `li`, `la`, `mv`, `not`, `neg`, `seqz`,
//!   `snez`, `sltz`, `sgtz`, `beqz`, `bnez`, `blez`, `bgez`, `bltz`, `bgtz`,
//!   `bgt`, `ble`, `bgtu`, `bleu`, `j`, `jr`, `call`, `ret`, `csrr`, `csrw`,
//!   `rdcycle`, `rdhartid`.
//! * Constant expressions everywhere an immediate is expected (see
//!   [`expr`]).
//!
//! # Example
//!
//! ```
//! use lrscwait_asm::Assembler;
//!
//! # fn main() -> Result<(), lrscwait_asm::AsmError> {
//! let program = Assembler::new()
//!     .define("ITERS", 16)
//!     .assemble(
//!         r#"
//!         .text
//!         _start:
//!             li   t0, ITERS
//!             la   a0, counter
//!         loop:
//!             amoadd.w t1, t0, (a0)
//!             addi t0, t0, -1
//!             bnez t0, loop
//!             ecall
//!         .data
//!         counter: .word 0
//!         "#,
//!     )?;
//! assert!(program.text.len() >= 6);
//! assert!(program.symbols.contains_key("counter"));
//! # Ok(())
//! # }
//! ```

mod assemble;
pub mod expr;

pub use assemble::{AsmError, Assembler, Program};

/// Default base address of the instruction ROM (outside the SPM).
pub const DEFAULT_TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment (inside the SPM).
pub const DEFAULT_DATA_BASE: u32 = 0x0000_0100;

/// Assembles `source` with default options.
///
/// Equivalent to `Assembler::new().assemble(source)`.
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) on any syntax or semantic error.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}
