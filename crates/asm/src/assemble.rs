//! The two-pass assembler core.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lrscwait_isa::{encode, AluOp, AmoOp, BranchOp, Csr, CsrOp, Instr, MemWidth, Reg};

use crate::expr::{eval, resolvable, ExprContext};

/// Assembly failure with the 1-based source line where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the input source.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// An assembled program image, ready to load into the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Base address of the instruction ROM.
    pub text_base: u32,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base address of the initialized data segment.
    pub data_base: u32,
    /// Initialized data image (byte-addressed, little-endian words).
    pub data: Vec<u8>,
    /// Size in bytes of the zero-initialized segment following `data`.
    pub bss_size: u32,
    /// Base address of the bss segment.
    pub bss_base: u32,
    /// All symbols (labels and `.equ` constants) with their final values.
    pub symbols: HashMap<String, u32>,
    /// Entry point (`_start` if defined, otherwise `text_base`).
    pub entry: u32,
    /// 1-based source line for each text word (debugging aid).
    pub source_lines: Vec<u32>,
}

impl Program {
    /// Looks up a symbol value.
    ///
    /// # Panics
    ///
    /// Panics when the symbol is undefined — intended for test/harness code
    /// that knows its kernel's layout.
    #[must_use]
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol `{name}`"))
    }

    /// Total footprint of data + bss in bytes.
    #[must_use]
    pub fn memory_footprint(&self) -> u32 {
        (self.bss_base + self.bss_size).saturating_sub(self.data_base)
    }

    /// Disassembles the text segment (address, word, mnemonic) — debug aid.
    #[must_use]
    pub fn disassemble(&self) -> Vec<(u32, u32, String)> {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &word)| {
                let addr = self.text_base + 4 * i as u32;
                let txt = lrscwait_isa::decode(word)
                    .map(|d| lrscwait_isa::disasm(&d))
                    .unwrap_or_else(|_| "<illegal>".to_string());
                (addr, word, txt)
            })
            .collect()
    }
}

/// Assembler with configurable section bases and injected constants.
///
/// The builder lets workload generators parameterize kernels without string
/// substitution: `define`d names are visible to the source exactly like
/// `.equ` constants defined on line zero.
#[derive(Clone, Debug)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
    defines: Vec<(String, u32)>,
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new()
    }
}

#[derive(Clone, Debug)]
enum Stmt {
    Directive {
        name: String,
        args: Vec<String>,
    },
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
}

#[derive(Clone, Debug)]
struct Item {
    line: u32,
    section: Section,
    /// Address of the item within its section (absolute for text/data).
    addr: u32,
    stmt: Stmt,
    /// Number of instruction words (text) or bytes (data/bss) this occupies.
    size: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Text,
    Data,
    Bss,
}

impl Assembler {
    /// Creates an assembler with the default memory map.
    #[must_use]
    pub fn new() -> Assembler {
        Assembler {
            text_base: crate::DEFAULT_TEXT_BASE,
            data_base: crate::DEFAULT_DATA_BASE,
            defines: Vec::new(),
        }
    }

    /// Sets the instruction ROM base address.
    #[must_use]
    pub fn text_base(mut self, base: u32) -> Assembler {
        assert_eq!(base % 4, 0, "text base must be word aligned");
        self.text_base = base;
        self
    }

    /// Sets the data segment base address.
    #[must_use]
    pub fn data_base(mut self, base: u32) -> Assembler {
        assert_eq!(base % 4, 0, "data base must be word aligned");
        self.data_base = base;
        self
    }

    /// Injects a constant visible to the source as a symbol (like `.equ`).
    #[must_use]
    pub fn define(mut self, name: &str, value: u32) -> Assembler {
        self.defines.push((name.to_string(), value));
        self
    }

    /// Assembles `source` into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] with the offending line on syntax errors,
    /// undefined symbols, out-of-range immediates, or misuse of directives.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let stmts = parse_source(source)?;

        // ---- Pass 1: layout, label collection, expansion sizing ----
        let mut symbols: HashMap<String, u32> = self.defines.iter().cloned().collect();
        let mut items: Vec<Item> = Vec::new();
        let mut section = Section::Text;
        let mut text_loc = self.text_base;
        let mut data_loc = self.data_base;
        let mut bss_loc = 0u32; // relative; rebased after pass 1
        let mut bss_labels: Vec<(String, u32)> = Vec::new();

        for (line, stmt) in stmts {
            let err = |message: String| AsmError { line, message };
            match stmt {
                ParsedLine::Label(name) => {
                    let value = match section {
                        Section::Text => text_loc,
                        Section::Data => data_loc,
                        Section::Bss => {
                            // Provisional: rebased after data size is known.
                            bss_labels.push((name.clone(), bss_loc));
                            continue;
                        }
                    };
                    if symbols.insert(name.clone(), value).is_some() {
                        return Err(err(format!("duplicate symbol `{name}`")));
                    }
                }
                ParsedLine::Stmt(Stmt::Directive { name, args }) => match name.as_str() {
                    ".text" => section = Section::Text,
                    ".data" => section = Section::Data,
                    ".bss" => section = Section::Bss,
                    ".section" => {
                        section = match args.first().map(String::as_str) {
                            Some(".text" | "text") => Section::Text,
                            Some(".data" | "data" | ".rodata" | "rodata") => Section::Data,
                            Some(".bss" | "bss") => Section::Bss,
                            other => return Err(err(format!("unknown section {other:?}"))),
                        };
                    }
                    ".global" | ".globl" => {}
                    ".equ" | ".set" => {
                        if args.len() != 2 {
                            return Err(err(format!("{name} expects `name, expr`")));
                        }
                        let ctx = ExprContext {
                            symbols: &symbols,
                            location: current_loc(section, text_loc, data_loc, bss_loc),
                        };
                        let value = eval(&args[1], &ctx).map_err(|e| err(e.0))?;
                        symbols.insert(args[0].clone(), value);
                    }
                    ".align" | ".p2align" => {
                        let ctx = ExprContext {
                            symbols: &symbols,
                            location: 0,
                        };
                        let p2 = eval(args.first().map_or("2", String::as_str), &ctx)
                            .map_err(|e| err(e.0))?;
                        if p2 > 16 {
                            return Err(err(format!("alignment 2^{p2} too large")));
                        }
                        let align = 1u32 << p2;
                        let pad = |loc: u32| (align - loc % align) % align;
                        match section {
                            Section::Text => {
                                let bytes = pad(text_loc);
                                if bytes % 4 != 0 {
                                    return Err(err("text alignment below 4 bytes".to_string()));
                                }
                                items.push(Item {
                                    line,
                                    section,
                                    addr: text_loc,
                                    stmt: Stmt::Directive {
                                        name: ".align-pad".to_string(),
                                        args: vec![],
                                    },
                                    size: bytes / 4,
                                });
                                text_loc += bytes;
                            }
                            Section::Data => {
                                let bytes = pad(data_loc);
                                items.push(Item {
                                    line,
                                    section,
                                    addr: data_loc,
                                    stmt: Stmt::Directive {
                                        name: ".align-pad".to_string(),
                                        args: vec![],
                                    },
                                    size: bytes,
                                });
                                data_loc += bytes;
                            }
                            Section::Bss => {
                                bss_loc += pad(bss_loc);
                            }
                        }
                    }
                    ".word" => {
                        if section == Section::Bss {
                            return Err(err(".word not allowed in .bss".to_string()));
                        }
                        let loc = if section == Section::Text {
                            &mut text_loc
                        } else {
                            &mut data_loc
                        };
                        if *loc % 4 != 0 {
                            return Err(err(".word requires 4-byte alignment".to_string()));
                        }
                        let size_units = if section == Section::Text {
                            args.len() as u32
                        } else {
                            4 * args.len() as u32
                        };
                        items.push(Item {
                            line,
                            section,
                            addr: *loc,
                            stmt: Stmt::Directive {
                                name: ".word".to_string(),
                                args,
                            },
                            size: size_units,
                        });
                        *loc += 4 * if section == Section::Text {
                            size_units
                        } else {
                            size_units / 4
                        };
                    }
                    ".space" | ".zero" => {
                        let ctx = ExprContext {
                            symbols: &symbols,
                            location: 0,
                        };
                        let n = eval(
                            args.first()
                                .ok_or_else(|| err(format!("{name} expects a size")))?,
                            &ctx,
                        )
                        .map_err(|e| err(e.0))?;
                        match section {
                            Section::Text => {
                                return Err(err(".space not allowed in .text".to_string()))
                            }
                            Section::Data => {
                                items.push(Item {
                                    line,
                                    section,
                                    addr: data_loc,
                                    stmt: Stmt::Directive {
                                        name: ".space".to_string(),
                                        args,
                                    },
                                    size: n,
                                });
                                data_loc += n;
                            }
                            Section::Bss => bss_loc += n,
                        }
                    }
                    other => return Err(err(format!("unknown directive `{other}`"))),
                },
                ParsedLine::Stmt(Stmt::Instr { mnemonic, operands }) => {
                    if section != Section::Text {
                        return Err(err(format!(
                            "instruction `{mnemonic}` outside .text section"
                        )));
                    }
                    let words = instr_size(&mnemonic, &operands, &symbols);
                    items.push(Item {
                        line,
                        section,
                        addr: text_loc,
                        stmt: Stmt::Instr { mnemonic, operands },
                        size: words,
                    });
                    text_loc += 4 * words;
                }
            }
        }

        // Rebase bss after the data segment, 64-byte aligned.
        let bss_base = (data_loc + 63) & !63;
        for (name, rel) in bss_labels {
            if symbols.insert(name.clone(), bss_base + rel).is_some() {
                return Err(AsmError {
                    line: 0,
                    message: format!("duplicate symbol `{name}`"),
                });
            }
        }
        let bss_size = bss_loc;

        // ---- Pass 2: encoding ----
        let mut text: Vec<u32> = Vec::with_capacity(((text_loc - self.text_base) / 4) as usize);
        let mut source_lines: Vec<u32> = Vec::with_capacity(text.capacity());
        let mut data: Vec<u8> = Vec::with_capacity((data_loc - self.data_base) as usize);

        for item in &items {
            let err = |message: String| AsmError {
                line: item.line,
                message,
            };
            match (&item.stmt, item.section) {
                (Stmt::Directive { name, args }, Section::Text) => match name.as_str() {
                    ".align-pad" => {
                        for _ in 0..item.size {
                            text.push(encode(&Instr::nop()));
                            source_lines.push(item.line);
                        }
                    }
                    ".word" => {
                        for (k, arg) in args.iter().enumerate() {
                            let ctx = ExprContext {
                                symbols: &symbols,
                                location: item.addr + 4 * k as u32,
                            };
                            let v = eval(arg, &ctx).map_err(|e| err(e.0))?;
                            text.push(v);
                            source_lines.push(item.line);
                        }
                    }
                    other => return Err(err(format!("internal: directive {other} in text"))),
                },
                (Stmt::Directive { name, args }, Section::Data) => match name.as_str() {
                    ".align-pad" | ".space" => {
                        data.extend(std::iter::repeat_n(0u8, item.size as usize));
                    }
                    ".word" => {
                        for (k, arg) in args.iter().enumerate() {
                            let ctx = ExprContext {
                                symbols: &symbols,
                                location: item.addr + 4 * k as u32,
                            };
                            let v = eval(arg, &ctx).map_err(|e| err(e.0))?;
                            data.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    other => return Err(err(format!("internal: directive {other} in data"))),
                },
                (Stmt::Instr { mnemonic, operands }, _) => {
                    let instrs = emit_instr(mnemonic, operands, &symbols, item.addr, item.size)
                        .map_err(err)?;
                    debug_assert_eq!(instrs.len() as u32, item.size, "pass-1/2 size mismatch");
                    for i in &instrs {
                        text.push(encode(i));
                        source_lines.push(item.line);
                    }
                }
                _ => unreachable!("bss items are not materialized"),
            }
        }

        let entry = symbols.get("_start").copied().unwrap_or(self.text_base);
        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data,
            bss_size,
            bss_base,
            symbols,
            entry,
            source_lines,
        })
    }
}

fn current_loc(section: Section, text: u32, data: u32, bss: u32) -> u32 {
    match section {
        Section::Text => text,
        Section::Data => data,
        Section::Bss => bss,
    }
}

enum ParsedLine {
    Label(String),
    Stmt(Stmt),
}

/// Splits source into (line, item) pairs; labels become separate entries.
fn parse_source(source: &str) -> Result<Vec<(u32, ParsedLine)>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let mut text = raw_line;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        if let Some(pos) = text.find("//") {
            text = &text[..pos];
        }
        for part in text.split(';') {
            let mut rest = part.trim();
            // Peel off leading labels.
            while let Some(colon) = rest.find(':') {
                let (head, tail) = rest.split_at(colon);
                let head = head.trim();
                if head.is_empty()
                    || !head
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                {
                    break;
                }
                out.push((line, ParsedLine::Label(head.to_string())));
                rest = tail[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            let (head, args_text) = match rest.find(|c: char| c.is_whitespace()) {
                Some(pos) => (&rest[..pos], rest[pos..].trim()),
                None => (rest, ""),
            };
            if head.starts_with('.') {
                let args = split_operands(args_text);
                out.push((
                    line,
                    ParsedLine::Stmt(Stmt::Directive {
                        name: head.to_string(),
                        args,
                    }),
                ));
            } else {
                let operands = split_operands(args_text);
                out.push((
                    line,
                    ParsedLine::Stmt(Stmt::Instr {
                        mnemonic: head.to_ascii_lowercase(),
                        operands,
                    }),
                ));
            }
        }
    }
    Ok(out)
}

/// Splits an operand list on top-level commas (commas inside parentheses are
/// kept, so `8(a0)` style operands survive).
fn split_operands(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                let t = cur.trim();
                if !t.is_empty() {
                    out.push(t.to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let t = cur.trim();
    if !t.is_empty() {
        out.push(t.to_string());
    }
    out
}

/// Number of instruction words a (possibly pseudo) instruction expands to.
///
/// `li` is 1 word when its expression is already resolvable (literals and
/// symbols defined earlier — never bss labels, which are rebased later) and
/// fits a signed 12-bit immediate; otherwise 2. All other multi-word pseudos
/// are unconditional.
fn instr_size(mnemonic: &str, operands: &[String], symbols: &HashMap<String, u32>) -> u32 {
    match mnemonic {
        "li" => {
            if let Some(expr_text) = operands.get(1) {
                if resolvable(expr_text, symbols) {
                    let ctx = ExprContext {
                        symbols,
                        location: 0,
                    };
                    if let Ok(v) = eval(expr_text, &ctx) {
                        if (v as i32) >= -2048 && (v as i32) < 2048 {
                            return 1;
                        }
                    }
                }
            }
            2
        }
        "la" => 2,
        _ => 1,
    }
}

fn parse_reg(text: &str) -> Result<Reg, String> {
    Reg::parse(text).ok_or_else(|| format!("unknown register `{text}`"))
}

/// Parses `offset(reg)` or `(reg)`; returns (offset expression, register).
fn parse_mem_operand(text: &str) -> Result<(String, Reg), String> {
    let open = text
        .rfind('(')
        .ok_or_else(|| format!("expected `offset(reg)` operand, got `{text}`"))?;
    if !text.ends_with(')') {
        return Err(format!("missing `)` in operand `{text}`"));
    }
    let reg = parse_reg(text[open + 1..text.len() - 1].trim())?;
    let offset = text[..open].trim().to_string();
    Ok((offset, reg))
}

struct EmitCtx<'a> {
    symbols: &'a HashMap<String, u32>,
    pc: u32,
}

impl EmitCtx<'_> {
    fn eval(&self, text: &str) -> Result<u32, String> {
        let ctx = ExprContext {
            symbols: self.symbols,
            location: self.pc,
        };
        eval(text, &ctx).map_err(|e| e.0)
    }

    fn eval_i12(&self, text: &str) -> Result<i32, String> {
        let v = self.eval(text)? as i32;
        if !(-2048..2048).contains(&v) {
            return Err(format!("immediate {v} does not fit in 12 bits"));
        }
        Ok(v)
    }

    fn branch_offset(&self, text: &str) -> Result<i32, String> {
        let target = self.eval(text)?;
        let offset = target.wrapping_sub(self.pc) as i32;
        if !(-4096..4096).contains(&offset) || offset % 2 != 0 {
            return Err(format!(
                "branch target {target:#x} out of range from pc {:#x}",
                self.pc
            ));
        }
        Ok(offset)
    }

    fn jal_offset(&self, text: &str) -> Result<i32, String> {
        let target = self.eval(text)?;
        let offset = target.wrapping_sub(self.pc) as i32;
        if !(-(1 << 20)..(1 << 20)).contains(&offset) || offset % 2 != 0 {
            return Err(format!(
                "jump target {target:#x} out of range from pc {:#x}",
                self.pc
            ));
        }
        Ok(offset)
    }
}

fn expect_operands(operands: &[String], n: usize, mnemonic: &str) -> Result<(), String> {
    if operands.len() != n {
        return Err(format!(
            "`{mnemonic}` expects {n} operand(s), got {}",
            operands.len()
        ));
    }
    Ok(())
}

fn li_expansion(rd: Reg, value: u32, force_two: bool) -> Vec<Instr> {
    let sv = value as i32;
    if !force_two && (-2048..2048).contains(&sv) {
        return vec![Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm: sv,
        }];
    }
    let hi = value.wrapping_add(0x800) & 0xFFFF_F000;
    let lo = value.wrapping_sub(hi) as i32;
    debug_assert!((-2048..2048).contains(&lo));
    vec![
        Instr::Lui { rd, imm: hi },
        Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo,
        },
    ]
}

/// Expands and encodes one (possibly pseudo) instruction at `pc`.
/// `sized_words` is the word count reserved by pass 1 (`li` must honour it).
fn emit_instr(
    mnemonic: &str,
    operands: &[String],
    symbols: &HashMap<String, u32>,
    pc: u32,
    sized_words: u32,
) -> Result<Vec<Instr>, String> {
    let ctx = EmitCtx { symbols, pc };

    let rr_alu = |op: AluOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        Ok(vec![Instr::Op {
            op,
            rd: parse_reg(&operands[0])?,
            rs1: parse_reg(&operands[1])?,
            rs2: parse_reg(&operands[2])?,
        }])
    };
    let imm_alu = |op: AluOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        Ok(vec![Instr::OpImm {
            op,
            rd: parse_reg(&operands[0])?,
            rs1: parse_reg(&operands[1])?,
            imm: ctx.eval_i12(&operands[2])?,
        }])
    };
    let shift_alu = |op: AluOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        let sh = ctx.eval(&operands[2])?;
        if sh >= 32 {
            return Err(format!("shift amount {sh} out of range"));
        }
        Ok(vec![Instr::OpImm {
            op,
            rd: parse_reg(&operands[0])?,
            rs1: parse_reg(&operands[1])?,
            imm: sh as i32,
        }])
    };
    let branch = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        let (a, b) = (parse_reg(&operands[0])?, parse_reg(&operands[1])?);
        let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
        Ok(vec![Instr::Branch {
            op,
            rs1,
            rs2,
            offset: ctx.branch_offset(&operands[2])?,
        }])
    };
    let branch_zero = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 2, mnemonic)?;
        let rs = parse_reg(&operands[0])?;
        let (rs1, rs2) = if swap {
            (Reg::ZERO, rs)
        } else {
            (rs, Reg::ZERO)
        };
        Ok(vec![Instr::Branch {
            op,
            rs1,
            rs2,
            offset: ctx.branch_offset(&operands[1])?,
        }])
    };
    let load = |width: MemWidth, signed: bool| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 2, mnemonic)?;
        let rd = parse_reg(&operands[0])?;
        let (off, rs1) = parse_mem_operand(&operands[1])?;
        let offset = if off.is_empty() {
            0
        } else {
            ctx.eval_i12(&off)?
        };
        Ok(vec![Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        }])
    };
    let store = |width: MemWidth| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 2, mnemonic)?;
        let rs2 = parse_reg(&operands[0])?;
        let (off, rs1) = parse_mem_operand(&operands[1])?;
        let offset = if off.is_empty() {
            0
        } else {
            ctx.eval_i12(&off)?
        };
        Ok(vec![Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        }])
    };
    let amo_rmw = |op: AmoOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        let rd = parse_reg(&operands[0])?;
        let rs2 = parse_reg(&operands[1])?;
        let (off, rs1) = parse_mem_operand(&operands[2])?;
        if !off.is_empty() {
            return Err("atomic operand must be `(reg)` with no offset".to_string());
        }
        Ok(vec![Instr::Amo { op, rd, rs1, rs2 }])
    };
    let amo_lr = |op: AmoOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 2, mnemonic)?;
        let rd = parse_reg(&operands[0])?;
        let (off, rs1) = parse_mem_operand(&operands[1])?;
        if !off.is_empty() {
            return Err("atomic operand must be `(reg)` with no offset".to_string());
        }
        Ok(vec![Instr::Amo {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
        }])
    };
    let parse_csr = |text: &str| -> Result<u16, String> {
        if let Some(c) = Csr::parse(text) {
            return Ok(c.address());
        }
        let v = ctx.eval(text)?;
        if v > 0xFFF {
            return Err(format!("CSR address {v:#x} out of range"));
        }
        Ok(v as u16)
    };
    let csr_reg = |op: CsrOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        Ok(vec![Instr::Csr {
            op,
            rd: parse_reg(&operands[0])?,
            rs1: parse_reg(&operands[2])?,
            csr: parse_csr(&operands[1])?,
            imm_form: false,
        }])
    };
    let csr_imm = |op: CsrOp| -> Result<Vec<Instr>, String> {
        expect_operands(operands, 3, mnemonic)?;
        let imm = ctx.eval(&operands[2])?;
        if imm > 31 {
            return Err(format!("CSR immediate {imm} out of range (0-31)"));
        }
        Ok(vec![Instr::Csr {
            op,
            rd: parse_reg(&operands[0])?,
            rs1: Reg::new(imm as u8),
            csr: parse_csr(&operands[1])?,
            imm_form: true,
        }])
    };

    match mnemonic {
        // --- RV32I register-register ---
        "add" => rr_alu(AluOp::Add),
        "sub" => rr_alu(AluOp::Sub),
        "sll" => rr_alu(AluOp::Sll),
        "slt" => rr_alu(AluOp::Slt),
        "sltu" => rr_alu(AluOp::Sltu),
        "xor" => rr_alu(AluOp::Xor),
        "srl" => rr_alu(AluOp::Srl),
        "sra" => rr_alu(AluOp::Sra),
        "or" => rr_alu(AluOp::Or),
        "and" => rr_alu(AluOp::And),
        // --- RV32M ---
        "mul" => rr_alu(AluOp::Mul),
        "mulh" => rr_alu(AluOp::Mulh),
        "mulhsu" => rr_alu(AluOp::Mulhsu),
        "mulhu" => rr_alu(AluOp::Mulhu),
        "div" => rr_alu(AluOp::Div),
        "divu" => rr_alu(AluOp::Divu),
        "rem" => rr_alu(AluOp::Rem),
        "remu" => rr_alu(AluOp::Remu),
        // --- RV32I immediate ---
        "addi" => imm_alu(AluOp::Add),
        "slti" => imm_alu(AluOp::Slt),
        "sltiu" => imm_alu(AluOp::Sltu),
        "xori" => imm_alu(AluOp::Xor),
        "ori" => imm_alu(AluOp::Or),
        "andi" => imm_alu(AluOp::And),
        "slli" => shift_alu(AluOp::Sll),
        "srli" => shift_alu(AluOp::Srl),
        "srai" => shift_alu(AluOp::Sra),
        // --- Upper immediates ---
        "lui" | "auipc" => {
            expect_operands(operands, 2, mnemonic)?;
            let rd = parse_reg(&operands[0])?;
            let v = ctx.eval(&operands[1])?;
            if v > 0xF_FFFF {
                return Err(format!("upper immediate {v:#x} exceeds 20 bits"));
            }
            let imm = v << 12;
            Ok(vec![if mnemonic == "lui" {
                Instr::Lui { rd, imm }
            } else {
                Instr::Auipc { rd, imm }
            }])
        }
        // --- Jumps ---
        "jal" => match operands.len() {
            1 => Ok(vec![Instr::Jal {
                rd: Reg::RA,
                offset: ctx.jal_offset(&operands[0])?,
            }]),
            2 => Ok(vec![Instr::Jal {
                rd: parse_reg(&operands[0])?,
                offset: ctx.jal_offset(&operands[1])?,
            }]),
            n => Err(format!("`jal` expects 1 or 2 operands, got {n}")),
        },
        "jalr" => match operands.len() {
            1 => Ok(vec![Instr::Jalr {
                rd: Reg::RA,
                rs1: parse_reg(&operands[0])?,
                offset: 0,
            }]),
            2 => {
                let rd = parse_reg(&operands[0])?;
                let (off, rs1) = parse_mem_operand(&operands[1])?;
                Ok(vec![Instr::Jalr {
                    rd,
                    rs1,
                    offset: if off.is_empty() {
                        0
                    } else {
                        ctx.eval_i12(&off)?
                    },
                }])
            }
            n => Err(format!("`jalr` expects 1 or 2 operands, got {n}")),
        },
        // --- Branches ---
        "beq" => branch(BranchOp::Eq, false),
        "bne" => branch(BranchOp::Ne, false),
        "blt" => branch(BranchOp::Lt, false),
        "bge" => branch(BranchOp::Ge, false),
        "bltu" => branch(BranchOp::Ltu, false),
        "bgeu" => branch(BranchOp::Geu, false),
        "bgt" => branch(BranchOp::Lt, true),
        "ble" => branch(BranchOp::Ge, true),
        "bgtu" => branch(BranchOp::Ltu, true),
        "bleu" => branch(BranchOp::Geu, true),
        "beqz" => branch_zero(BranchOp::Eq, false),
        "bnez" => branch_zero(BranchOp::Ne, false),
        "bltz" => branch_zero(BranchOp::Lt, false),
        "bgez" => branch_zero(BranchOp::Ge, false),
        "bgtz" => branch_zero(BranchOp::Lt, true),
        "blez" => branch_zero(BranchOp::Ge, true),
        // --- Loads / stores ---
        "lw" => load(MemWidth::Word, true),
        "lh" => load(MemWidth::Half, true),
        "lb" => load(MemWidth::Byte, true),
        "lhu" => load(MemWidth::Half, false),
        "lbu" => load(MemWidth::Byte, false),
        "sw" => store(MemWidth::Word),
        "sh" => store(MemWidth::Half),
        "sb" => store(MemWidth::Byte),
        // --- System ---
        "fence" => Ok(vec![Instr::Fence]),
        "ecall" => Ok(vec![Instr::Ecall]),
        "ebreak" => Ok(vec![Instr::Ebreak]),
        "csrrw" => csr_reg(CsrOp::ReadWrite),
        "csrrs" => csr_reg(CsrOp::ReadSet),
        "csrrc" => csr_reg(CsrOp::ReadClear),
        "csrrwi" => csr_imm(CsrOp::ReadWrite),
        "csrrsi" => csr_imm(CsrOp::ReadSet),
        "csrrci" => csr_imm(CsrOp::ReadClear),
        // --- RV32A ---
        "lr.w" => amo_lr(AmoOp::Lr),
        "sc.w" => amo_rmw(AmoOp::Sc),
        "amoswap.w" => amo_rmw(AmoOp::Swap),
        "amoadd.w" => amo_rmw(AmoOp::Add),
        "amoxor.w" => amo_rmw(AmoOp::Xor),
        "amoand.w" => amo_rmw(AmoOp::And),
        "amoor.w" => amo_rmw(AmoOp::Or),
        "amomin.w" => amo_rmw(AmoOp::Min),
        "amomax.w" => amo_rmw(AmoOp::Max),
        "amominu.w" => amo_rmw(AmoOp::Minu),
        "amomaxu.w" => amo_rmw(AmoOp::Maxu),
        // --- Xlrscwait ---
        "lrwait.w" => amo_lr(AmoOp::LrWait),
        "scwait.w" => amo_rmw(AmoOp::ScWait),
        "mwait.w" => amo_rmw(AmoOp::MWait),
        // --- Pseudo-instructions ---
        "nop" => Ok(vec![Instr::nop()]),
        "li" => {
            expect_operands(operands, 2, mnemonic)?;
            let rd = parse_reg(&operands[0])?;
            let v = ctx.eval(&operands[1])?;
            Ok(li_expansion(rd, v, sized_words == 2))
        }
        "la" => {
            expect_operands(operands, 2, mnemonic)?;
            let rd = parse_reg(&operands[0])?;
            let v = ctx.eval(&operands[1])?;
            Ok(li_expansion(rd, v, true))
        }
        "mv" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Add,
                rd: parse_reg(&operands[0])?,
                rs1: parse_reg(&operands[1])?,
                imm: 0,
            }])
        }
        "not" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Xor,
                rd: parse_reg(&operands[0])?,
                rs1: parse_reg(&operands[1])?,
                imm: -1,
            }])
        }
        "neg" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sub,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                rs2: parse_reg(&operands[1])?,
            }])
        }
        "seqz" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Sltu,
                rd: parse_reg(&operands[0])?,
                rs1: parse_reg(&operands[1])?,
                imm: 1,
            }])
        }
        "snez" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sltu,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                rs2: parse_reg(&operands[1])?,
            }])
        }
        "sltz" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Slt,
                rd: parse_reg(&operands[0])?,
                rs1: parse_reg(&operands[1])?,
                rs2: Reg::ZERO,
            }])
        }
        "sgtz" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Slt,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                rs2: parse_reg(&operands[1])?,
            }])
        }
        "j" => {
            expect_operands(operands, 1, mnemonic)?;
            Ok(vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: ctx.jal_offset(&operands[0])?,
            }])
        }
        "jr" => {
            expect_operands(operands, 1, mnemonic)?;
            Ok(vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: parse_reg(&operands[0])?,
                offset: 0,
            }])
        }
        "call" => {
            expect_operands(operands, 1, mnemonic)?;
            Ok(vec![Instr::Jal {
                rd: Reg::RA,
                offset: ctx.jal_offset(&operands[0])?,
            }])
        }
        "ret" => Ok(vec![Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }]),
        "csrr" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::ReadSet,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                csr: parse_csr(&operands[1])?,
                imm_form: false,
            }])
        }
        "csrw" => {
            expect_operands(operands, 2, mnemonic)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::ReadWrite,
                rd: Reg::ZERO,
                rs1: parse_reg(&operands[1])?,
                csr: parse_csr(&operands[0])?,
                imm_form: false,
            }])
        }
        "rdcycle" => {
            expect_operands(operands, 1, mnemonic)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::ReadSet,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                csr: lrscwait_isa::CSR_CYCLE,
                imm_form: false,
            }])
        }
        "rdhartid" => {
            expect_operands(operands, 1, mnemonic)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::ReadSet,
                rd: parse_reg(&operands[0])?,
                rs1: Reg::ZERO,
                csr: lrscwait_isa::CSR_MHARTID,
                imm_form: false,
            }])
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}
