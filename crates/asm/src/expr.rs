//! Constant-expression evaluator for assembler operands.
//!
//! Supports integer literals (decimal, `0x`, `0b`, `0o`, optionally negative),
//! symbols (labels and `.equ` definitions), `.` for the current location
//! counter, parentheses, and the operators `| ^ & << >> + - * / %` with
//! C-like precedence plus unary `-` and `~`.

use std::collections::HashMap;

/// Evaluation context: symbol table plus the current location counter.
#[derive(Debug)]
pub struct ExprContext<'a> {
    /// Symbol values known so far (labels and `.equ` constants).
    pub symbols: &'a HashMap<String, u32>,
    /// Value of `.` — the address of the item being assembled.
    pub location: u32,
}

/// Expression evaluation failure (undefined symbol, syntax error, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprError(pub String);

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Num(u32),
    Sym(String),
    Dot,
    LParen,
    RParen,
    Op(&'static str),
}

fn lex(input: &str) -> Result<Vec<Tok>, ExprError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '+' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '-' => {
                let op: &'static str = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '&' => "&",
                    '|' => "|",
                    '^' => "^",
                    _ => "~",
                };
                toks.push(Tok::Op(op));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    toks.push(Tok::Op("<<"));
                    i += 2;
                } else {
                    return Err(ExprError(format!("unexpected '<' in expression `{input}`")));
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Op(">>"));
                    i += 2;
                } else {
                    return Err(ExprError(format!("unexpected '>' in expression `{input}`")));
                }
            }
            '.' => {
                // `.` alone is the location counter; `.foo` is a symbol.
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start + 1 {
                    toks.push(Tok::Dot);
                } else {
                    toks.push(Tok::Sym(input[start..i].to_string()));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text: String = input[start..i].chars().filter(|&ch| ch != '_').collect();
                let value =
                    if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                        u32::from_str_radix(hex, 16)
                    } else if let Some(bin) = text.strip_prefix("0b").or(text.strip_prefix("0B")) {
                        u32::from_str_radix(bin, 2)
                    } else if let Some(oct) = text.strip_prefix("0o").or(text.strip_prefix("0O")) {
                        u32::from_str_radix(oct, 8)
                    } else {
                        text.parse::<u32>()
                    }
                    .map_err(|_| ExprError(format!("bad integer literal `{text}`")))?;
                toks.push(Tok::Num(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                toks.push(Tok::Sym(input[start..i].to_string()));
            }
            '\'' => {
                // Character literal: 'c' or '\n' style escapes.
                let rest = &input[i + 1..];
                let (value, len) =
                    if let Some(stripped) = rest.strip_prefix('\\') {
                        let esc = stripped.chars().next().ok_or_else(|| {
                            ExprError("unterminated character literal".to_string())
                        })?;
                        let v = match esc {
                            'n' => b'\n',
                            't' => b'\t',
                            '0' => 0,
                            '\\' => b'\\',
                            '\'' => b'\'',
                            other => {
                                return Err(ExprError(format!("unknown escape `\\{other}`")));
                            }
                        };
                        (u32::from(v), 2)
                    } else {
                        let ch = rest.chars().next().ok_or_else(|| {
                            ExprError("unterminated character literal".to_string())
                        })?;
                        (ch as u32, ch.len_utf8())
                    };
                if !input[i + 1 + len..].starts_with('\'') {
                    return Err(ExprError("unterminated character literal".to_string()));
                }
                toks.push(Tok::Num(value));
                i += len + 2;
            }
            other => {
                return Err(ExprError(format!(
                    "unexpected character `{other}` in expression `{input}`"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser<'a, 'c> {
    toks: &'a [Tok],
    pos: usize,
    ctx: &'a ExprContext<'c>,
}

impl Parser<'_, '_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, ops: &[&str]) -> Option<&'static str> {
        if let Some(Tok::Op(op)) = self.peek() {
            if ops.contains(op) {
                let op = *op;
                self.pos += 1;
                return Some(op);
            }
        }
        None
    }

    fn primary(&mut self) -> Result<u32, ExprError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(n),
            Some(Tok::Dot) => Ok(self.ctx.location),
            Some(Tok::Sym(name)) => self
                .ctx
                .symbols
                .get(&name)
                .copied()
                .ok_or_else(|| ExprError(format!("undefined symbol `{name}`"))),
            Some(Tok::LParen) => {
                let v = self.or_expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(v),
                    _ => Err(ExprError("missing `)`".to_string())),
                }
            }
            Some(Tok::Op("-")) => Ok(self.primary()?.wrapping_neg()),
            Some(Tok::Op("~")) => Ok(!self.primary()?),
            other => Err(ExprError(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }

    fn mul_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.primary()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.primary()?;
            v = match op {
                "*" => v.wrapping_mul(rhs),
                "/" => {
                    if rhs == 0 {
                        return Err(ExprError("division by zero".to_string()));
                    }
                    v / rhs
                }
                _ => {
                    if rhs == 0 {
                        return Err(ExprError("modulo by zero".to_string()));
                    }
                    v % rhs
                }
            };
        }
        Ok(v)
    }

    fn add_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.mul_expr()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.mul_expr()?;
            v = if op == "+" {
                v.wrapping_add(rhs)
            } else {
                v.wrapping_sub(rhs)
            };
        }
        Ok(v)
    }

    fn shift_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.add_expr()?;
        while let Some(op) = self.eat_op(&["<<", ">>"]) {
            let rhs = self.add_expr()?;
            v = if op == "<<" {
                v.wrapping_shl(rhs)
            } else {
                v.wrapping_shr(rhs)
            };
        }
        Ok(v)
    }

    fn and_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.shift_expr()?;
        while self.eat_op(&["&"]).is_some() {
            v &= self.shift_expr()?;
        }
        Ok(v)
    }

    fn xor_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.and_expr()?;
        while self.eat_op(&["^"]).is_some() {
            v ^= self.and_expr()?;
        }
        Ok(v)
    }

    fn or_expr(&mut self) -> Result<u32, ExprError> {
        let mut v = self.xor_expr()?;
        while self.eat_op(&["|"]).is_some() {
            v |= self.xor_expr()?;
        }
        Ok(v)
    }
}

/// Evaluates a constant expression to a 32-bit value.
///
/// # Errors
///
/// Returns [`ExprError`] on syntax errors, undefined symbols, or division by
/// zero.
pub fn eval(input: &str, ctx: &ExprContext<'_>) -> Result<u32, ExprError> {
    let toks = lex(input)?;
    if toks.is_empty() {
        return Err(ExprError("empty expression".to_string()));
    }
    let mut parser = Parser {
        toks: &toks,
        pos: 0,
        ctx,
    };
    let v = parser.or_expr()?;
    if parser.pos != toks.len() {
        return Err(ExprError(format!(
            "trailing tokens in expression `{input}`"
        )));
    }
    Ok(v)
}

/// Returns `true` when every symbol referenced by `input` is already defined
/// (used by the first pass to size `li` expansions deterministically).
#[must_use]
pub fn resolvable(input: &str, symbols: &HashMap<String, u32>) -> bool {
    match lex(input) {
        Ok(toks) => toks.iter().all(|t| match t {
            Tok::Sym(name) => symbols.contains_key(name),
            _ => true,
        }),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(symbols: &HashMap<String, u32>) -> ExprContext<'_> {
        ExprContext {
            symbols,
            location: 0x100,
        }
    }

    #[test]
    fn literals() {
        let syms = HashMap::new();
        let ctx = ctx_with(&syms);
        assert_eq!(eval("42", &ctx), Ok(42));
        assert_eq!(eval("0x10", &ctx), Ok(16));
        assert_eq!(eval("0b101", &ctx), Ok(5));
        assert_eq!(eval("0o17", &ctx), Ok(15));
        assert_eq!(eval("1_000", &ctx), Ok(1000));
        assert_eq!(eval("-1", &ctx), Ok(u32::MAX));
        assert_eq!(eval("'A'", &ctx), Ok(65));
        assert_eq!(eval("'\\n'", &ctx), Ok(10));
    }

    #[test]
    fn precedence() {
        let syms = HashMap::new();
        let ctx = ctx_with(&syms);
        assert_eq!(eval("2+3*4", &ctx), Ok(14));
        assert_eq!(eval("(2+3)*4", &ctx), Ok(20));
        assert_eq!(eval("1<<4|1", &ctx), Ok(17));
        assert_eq!(eval("0xFF & 0x0F", &ctx), Ok(0x0F));
        assert_eq!(eval("1 << 2 + 1", &ctx), Ok(8)); // shift binds looser than +
        assert_eq!(eval("~0", &ctx), Ok(u32::MAX));
        assert_eq!(eval("10 % 3", &ctx), Ok(1));
        assert_eq!(eval("7 / 2", &ctx), Ok(3));
        assert_eq!(eval("1 ^ 3", &ctx), Ok(2));
    }

    #[test]
    fn symbols_and_location() {
        let mut syms = HashMap::new();
        syms.insert("foo".to_string(), 12);
        syms.insert("bar.baz".to_string(), 30);
        let ctx = ctx_with(&syms);
        assert_eq!(eval("foo*2", &ctx), Ok(24));
        assert_eq!(eval("bar.baz", &ctx), Ok(30));
        assert_eq!(eval(".", &ctx), Ok(0x100));
        assert_eq!(eval(". + 8", &ctx), Ok(0x108));
        assert!(eval("nope", &ctx).is_err());
    }

    #[test]
    fn resolvability() {
        let mut syms = HashMap::new();
        syms.insert("known".to_string(), 1);
        assert!(resolvable("known + 2", &syms));
        assert!(!resolvable("unknown + 2", &syms));
        assert!(resolvable("2 * 3", &syms));
    }

    #[test]
    fn errors() {
        let syms = HashMap::new();
        let ctx = ctx_with(&syms);
        assert!(eval("", &ctx).is_err());
        assert!(eval("1 +", &ctx).is_err());
        assert!(eval("(1", &ctx).is_err());
        assert!(eval("1 1", &ctx).is_err());
        assert!(eval("1/0", &ctx).is_err());
        assert!(eval("0xZZ", &ctx).is_err());
    }
}
