//! Snapshot-loader hardening: a machine restore fed truncated or
//! bit-flipped images must *always* come back as a typed
//! [`SimError::BadSnapshot`] or succeed outright (a flip can land in
//! payload bytes — register values, memory words — and still describe a
//! legal machine). What it must never do is panic, abort on a
//! pathological allocation, or loop: the deterministic corpus below
//! sweeps every truncation length class and a bit flip in every region
//! of the image.

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExitReason, Machine, SimConfig, SimError};

/// Contended wait-queue counter: parks cores, populates adapter queues
/// and keeps flits in flight, so the snapshot exercises every section of
/// the format.
const CONTENDED_COUNTER: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        li   t0, 12
    again:
        lrwait.w t1, (a0)
        addi t1, t1, 1
        scwait.w t2, t1, (a0)
        bnez t2, again
        addi t0, t0, -1
        bnez t0, again
        sw   zero, 0x0C(s0)      # barrier
        ecall
    .data
    counter: .word 0
"#;

fn fresh_machine() -> Machine {
    let program = Assembler::new()
        .assemble(CONTENDED_COUNTER)
        .expect("assembles");
    let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
    Machine::new(cfg, &program).expect("loads")
}

/// A mid-run snapshot with parked cores and in-flight traffic.
fn mid_run_snapshot() -> Vec<u8> {
    let mut m = fresh_machine();
    let stop = m.run_until(120).expect("runs");
    assert_eq!(stop.exit, ExitReason::TargetReached);
    m.snapshot()
}

/// Restore must return a typed error or succeed — anything else (panic,
/// abort) fails the test by crashing it.
fn restore_is_total(bytes: &[u8], what: &str) -> bool {
    let mut m = fresh_machine();
    match m.restore(bytes) {
        Ok(()) => true,
        Err(SimError::BadSnapshot { .. }) => false,
        Err(other) => panic!("{what}: restore must fail as BadSnapshot, got {other}"),
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let good = mid_run_snapshot();
    // Every truncation is malformed: the format ends with an exact-length
    // check, so no strict prefix may restore successfully.
    let mut lengths: Vec<usize> = (0..good.len().min(24)).collect();
    lengths.extend((24..good.len()).step_by(31));
    lengths.push(good.len() - 1);
    for len in lengths {
        assert!(
            !restore_is_total(&good[..len], "truncation"),
            "a {len}-byte prefix of a {}-byte snapshot restored successfully",
            good.len()
        );
    }
}

#[test]
fn every_bit_flip_is_typed_or_legal() {
    let good = mid_run_snapshot();
    // One flipped bit per 13-byte stride walks every section of the
    // image (header, cores, qnodes, adapters, memory, networks,
    // outboxes, debug log) at varying bit positions.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for pos in (0..good.len()).step_by(13) {
        let mut mutant = good.clone();
        mutant[pos] ^= 1 << (pos % 8);
        if restore_is_total(&mutant, "bit flip") {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    // The header alone (magic, version, label, geometry, fingerprint)
    // must reject its flips; payload flips may legally survive.
    assert!(
        rejected > 0,
        "no corrupted image was rejected ({accepted} accepted)"
    );
}

#[test]
fn appended_garbage_is_a_typed_error() {
    let mut good = mid_run_snapshot();
    good.extend_from_slice(&[0xA5; 7]);
    assert!(
        !restore_is_total(&good, "trailing bytes"),
        "a snapshot with trailing garbage restored successfully"
    );
}

#[test]
fn hostile_section_lengths_are_typed_errors() {
    // A flipped high bit in a length field is the nastiest corruption
    // class (it asks the loader to allocate or iterate absurdly); the
    // stride fuzz above may miss the exact offsets, so hit the known
    // ones directly: the label length (offset 8) and a huge value in the
    // middle of the image.
    let good = mid_run_snapshot();
    for (offset, value) in [(8usize, u32::MAX), (8, 0x7FFF_FFFF), (8, 257)] {
        let mut mutant = good.clone();
        mutant[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
        assert!(
            !restore_is_total(&mutant, "hostile label length"),
            "label length {value:#x} at offset {offset} was accepted"
        );
    }
    // Rewrite every aligned u32 in the first 256 bytes to u32::MAX —
    // covers geometry counts and the early queue/count fields.
    for offset in (0..good.len().min(256)).step_by(4) {
        let mut mutant = good.clone();
        mutant[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = restore_is_total(&mutant, "hostile u32");
    }
}
