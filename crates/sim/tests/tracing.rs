//! Machine-level tracing tests: the emitted event stream is complete,
//! internally consistent, and — like every other observable — identical
//! across the event-driven scheduler, the reference stepper, and the
//! translated superblock stepper.

use lrscwait_asm::Assembler;
use lrscwait_core::{SyncArch, SyncEvent};
use lrscwait_sim::{ExecMode, Machine, SimConfig};
use lrscwait_trace::{RecordingSink, SharedSink, TraceEvent};

const KERNEL: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        li   t2, 4
    loop:
        lrwait.w t0, (a0)
        addi     t0, t0, 1
        scwait.w t1, t0, (a0)
        bnez     t1, loop
        addi     t2, t2, -1
        bnez     t2, loop
        sw   zero, 0x0C(s0)     # barrier
        ecall
    .data
    counter: .word 0
"#;

fn record_run(arch: SyncArch, mode: ExecMode, shards: usize) -> (Vec<(u64, TraceEvent)>, u64) {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(4)
        .arch(arch)
        .exec_mode(mode)
        .shards(shards)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");
    let sink = SharedSink::new(RecordingSink::new());
    machine.set_tracer(Box::new(sink.clone()));
    assert!(machine.tracing());
    let summary = machine.run().expect("runs");
    (sink.take().events, summary.cycles)
}

#[test]
fn trace_stream_is_identical_across_exec_modes_and_shards() {
    // Events happen in stepped cycles only, and every (mode, shard count)
    // combination is bit-identical in everything observable — so even the
    // *trace streams* must match event-for-event, cycle-for-cycle:
    // parallel phases buffer per shard and drain in shard order, which
    // reproduces the single-sharded emission order exactly.
    for arch in [SyncArch::LrscWaitIdeal, SyncArch::Colibri { queues: 2 }] {
        let (fast, fast_cycles) = record_run(arch, ExecMode::EventDriven, 1);
        for (mode, shards) in [
            (ExecMode::Reference, 1),
            (ExecMode::Translated, 1),
            (ExecMode::EventDriven, 3),
            (ExecMode::Reference, 2),
            (ExecMode::Translated, 3),
        ] {
            let (other, other_cycles) = record_run(arch, mode, shards);
            assert_eq!(fast_cycles, other_cycles);
            assert_eq!(
                fast.len(),
                other.len(),
                "{arch}: event counts diverge ({mode:?}, {shards} shards)"
            );
            for (i, (f, r)) in fast.iter().zip(&other).enumerate() {
                assert_eq!(
                    f, r,
                    "{arch}: event {i} diverges ({mode:?}, {shards} shards)"
                );
            }
        }
    }
}

#[test]
fn stream_starts_with_geometry_and_balances_parks() {
    let (events, _) = record_run(SyncArch::Colibri { queues: 2 }, ExecMode::EventDriven, 2);
    assert!(
        matches!(
            events.first(),
            Some((0, TraceEvent::Start { cores: 4, .. }))
        ),
        "first event must be Start: {:?}",
        events.first()
    );

    let count = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|(_, e)| pred(e)).count();
    let parks = count(&|e| matches!(e, TraceEvent::Park { .. }));
    let mem_wakes = count(&|e| {
        matches!(
            e,
            TraceEvent::Wake {
                cause: lrscwait_trace::WakeCause::Response(_),
                ..
            }
        )
    });
    // The run completed, so every blocking park saw its response.
    assert_eq!(parks, mem_wakes, "every park must wake exactly once");
    assert!(parks > 0);

    // All four cores arrive at the barrier, one release wakes the parked
    // ones, and all four halt.
    assert_eq!(count(&|e| matches!(e, TraceEvent::BarrierArrive { .. })), 4);
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::BarrierRelease { .. })),
        1
    );
    assert_eq!(count(&|e| matches!(e, TraceEvent::Halt { .. })), 4);

    // Colibri hand-offs appear as adapter events *and* the bounced
    // WakeUp requests that implement them.
    let successor_updates = count(&|e| {
        matches!(
            e,
            TraceEvent::Sync {
                event: SyncEvent::SuccessorUpdate { .. },
                ..
            }
        )
    });
    let wakeups_sent = count(&|e| {
        matches!(
            e,
            TraceEvent::ReqSent {
                kind: lrscwait_trace::OpKind::WakeUp,
                ..
            }
        )
    });
    assert!(successor_updates > 0, "contended colibri run must chain");
    assert_eq!(
        successor_updates, wakeups_sent,
        "every successor update leads to exactly one bounced WakeUp"
    );

    // Cycles are non-decreasing.
    for pair in events.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "cycle stamps must not go back");
    }
}

#[test]
#[should_panic(expected = "attach the trace sink before running")]
fn tracer_must_attach_before_first_cycle() {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(4)
        .arch(SyncArch::LrscWaitIdeal)
        .build()
        .unwrap();
    let mut machine = Machine::new(cfg, &program).unwrap();
    machine.step_cycle().unwrap();
    machine.set_tracer(Box::new(RecordingSink::new()));
}
