//! Chaos-engine differential suite: the determinism contract for fault
//! injection.
//!
//! Two guarantees, both load-bearing for the litmus harness:
//!
//! 1. **Chaos-off bit-identity.** A config with `chaos: None` and one
//!    carrying a *quiet* plan (all rates zero, no mutation) are
//!    indistinguishable — run summaries, statistics, debug logs and
//!    trace-event streams match byte-for-byte across every execution
//!    mode and shard count. The engine follows the `Tracer`/`Profiler`
//!    discipline: off means one predictable branch, not "small noise".
//!
//! 2. **Chaos-on determinism.** An *active* plan makes runs differ from
//!    clean ones (it must actually inject), but the injected run itself
//!    is a pure function of the seed: every (mode, shards) combination
//!    under the same plan produces identical summaries, statistics and
//!    trace streams, because every injection site keys on quantities the
//!    existing determinism contract already fixes.

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExecMode, FaultPlan, Machine, SimConfig};
use lrscwait_trace::{RecordingSink, SharedSink, TraceEvent};

/// Contended wait-queue counter with a barrier: parks cores, exercises
/// reservations, wakeups and both networks — every chaos injection site
/// sees candidates.
const KERNEL: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        li   t0, 10
    again:
        lrwait.w t1, (a0)
        addi t1, t1, 1
        scwait.w t2, t1, (a0)
        bnez t2, again
        addi t0, t0, -1
        bnez t0, again
        sw   zero, 0x0C(s0)      # barrier
        ecall
    .data
    counter: .word 0
"#;

/// Every (mode, shards) combination the determinism contract covers.
const COMBOS: [(ExecMode, usize); 6] = [
    (ExecMode::EventDriven, 1),
    (ExecMode::Reference, 1),
    (ExecMode::Translated, 1),
    (ExecMode::EventDriven, 3),
    (ExecMode::Reference, 2),
    (ExecMode::Translated, 3),
];

struct Observation {
    summary: lrscwait_sim::RunSummary,
    stats: lrscwait_sim::SimStats,
    debug_log: Vec<(u64, u32, u32)>,
    trace: Vec<(u64, TraceEvent)>,
}

fn observe(arch: SyncArch, mode: ExecMode, shards: usize, chaos: Option<FaultPlan>) -> Observation {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    let mut builder = SimConfig::builder()
        .cores(4)
        .arch(arch)
        .exec_mode(mode)
        .shards(shards);
    if let Some(plan) = chaos {
        builder = builder.chaos(plan);
    }
    let cfg = builder.build().expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");
    let sink = SharedSink::new(RecordingSink::new());
    machine.set_tracer(Box::new(sink.clone()));
    let summary = machine.run().expect("runs");
    Observation {
        summary,
        stats: machine.stats(),
        debug_log: machine.debug_log().to_vec(),
        trace: sink.take().events,
    }
}

fn assert_observations_match(a: &Observation, b: &Observation, what: &str) {
    assert_eq!(a.summary, b.summary, "{what}: run summary");
    assert_eq!(a.stats, b.stats, "{what}: statistics");
    assert_eq!(a.debug_log, b.debug_log, "{what}: debug log");
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{what}: trace event counts diverge"
    );
    for (i, (ea, eb)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(ea, eb, "{what}: trace event {i}");
    }
}

fn test_archs() -> [SyncArch; 2] {
    [
        SyncArch::LrscWait { slots: 2 },
        SyncArch::Colibri { queues: 2 },
    ]
}

#[test]
fn quiet_plan_is_bit_identical_to_chaos_off() {
    for arch in test_archs() {
        for (mode, shards) in COMBOS {
            let off = observe(arch, mode, shards, None);
            let quiet = observe(arch, mode, shards, Some(FaultPlan::quiet(42)));
            assert_observations_match(
                &off,
                &quiet,
                &format!("{arch}: quiet vs off ({mode:?}, {shards} shards)"),
            );
        }
    }
}

#[test]
fn active_plan_is_deterministic_across_modes_and_shards() {
    for arch in test_archs() {
        let (mode0, shards0) = COMBOS[0];
        let baseline = observe(arch, mode0, shards0, Some(FaultPlan::standard(7)));
        for (mode, shards) in &COMBOS[1..] {
            let other = observe(arch, *mode, *shards, Some(FaultPlan::standard(7)));
            assert_observations_match(
                &baseline,
                &other,
                &format!("{arch}: chaos-on ({mode:?}, {shards} shards)"),
            );
        }
    }
}

#[test]
fn active_plan_actually_perturbs_the_run() {
    // Sanity check on the other side of the contract: an active plan must
    // not be a no-op, or the whole litmus suite tests nothing.
    let arch = SyncArch::Colibri { queues: 2 };
    let off = observe(arch, ExecMode::EventDriven, 1, None);
    let on = observe(arch, ExecMode::EventDriven, 1, Some(FaultPlan::standard(7)));
    assert_ne!(
        off.summary.cycles, on.summary.cycles,
        "an active fault plan must change the run"
    );
    assert!(
        on.stats.adapters.reservations_broken >= off.stats.adapters.reservations_broken,
        "eviction injection can only add broken reservations"
    );
}

#[test]
fn different_seeds_diverge() {
    let arch = SyncArch::Colibri { queues: 2 };
    let a = observe(arch, ExecMode::EventDriven, 1, Some(FaultPlan::standard(7)));
    let b = observe(arch, ExecMode::EventDriven, 1, Some(FaultPlan::standard(8)));
    assert_ne!(
        (a.summary.cycles, a.stats.adapters.reservations_broken),
        (b.summary.cycles, b.stats.adapters.reservations_broken),
        "distinct seeds must explore distinct schedules"
    );
}
