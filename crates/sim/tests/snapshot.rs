//! Checkpoint/restore differential suite: running to cycle `N` must be
//! bit-identical to running to cycle `K`, snapshotting, restoring (into a
//! fresh machine) and continuing to `N` — on summaries, statistics, the
//! debug log and trace-event streams — for every combination of execution
//! mode and shard count on *both* sides of the snapshot, and across the
//! synchronization architectures. The interrupt points are deliberately
//! chosen to land mid-wait (parked cores, armed monitors, populated
//! reservation queues) and mid-flight (flits in both networks).

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExecMode, ExitReason, Machine, SimConfig, SimError};
use lrscwait_trace::{RecordingSink, SharedSink, TraceEvent};

/// Mode/shard combinations exercised on each side of a snapshot.
const COMBOS: [(ExecMode, usize); 5] = [
    (ExecMode::EventDriven, 1),
    (ExecMode::Reference, 1),
    (ExecMode::Translated, 1),
    (ExecMode::EventDriven, 3),
    (ExecMode::Translated, 3),
];

fn configured(base: SimConfig, mode: ExecMode, shards: usize) -> SimConfig {
    let mut cfg = base;
    cfg.exec_mode = mode;
    cfg.shards = shards;
    cfg
}

/// Asserts `run-to-end` ≡ `run-to-k + snapshot + restore + run-to-end`
/// for every (mode, shards) pair on both sides of the snapshot.
fn assert_snapshot_equivalent(src: &str, base_cfg: SimConfig, k: u64, what: &str) {
    let program = Assembler::new().assemble(src).expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");

    let mut base = Machine::with_decoded(base_cfg, decoded.clone()).expect("loads");
    let base_summary = base.run().expect("uninterrupted run");
    let base_stats = base.stats();
    assert_eq!(
        base_summary.exit,
        ExitReason::AllHalted,
        "{what}: completes"
    );
    assert!(
        k < base_summary.cycles,
        "{what}: interrupt point is mid-run"
    );

    for (mode_a, shards_a) in COMBOS {
        let cfg_a = configured(base_cfg, mode_a, shards_a);
        let mut first = Machine::with_decoded(cfg_a, decoded.clone()).expect("loads");
        let stop = first.run_until(k).expect("run to interrupt");
        assert_eq!(
            stop.exit,
            ExitReason::TargetReached,
            "{what}: {mode_a:?}/{shards_a} stops at the target"
        );
        assert_eq!(stop.cycles, k, "{what}: {mode_a:?}/{shards_a} exact stop");
        let bytes = first.snapshot();

        for (mode_b, shards_b) in COMBOS {
            let cfg_b = configured(base_cfg, mode_b, shards_b);
            let mut second = Machine::with_decoded(cfg_b, decoded.clone()).expect("loads");
            second.restore(&bytes).expect("restore");
            assert_eq!(second.cycles(), k, "restored cycle counter");
            let summary = second.run().expect("resumed run");
            let ctx = format!("{what}: {mode_a:?}/{shards_a} → {mode_b:?}/{shards_b}");
            assert_eq!(base_summary, summary, "{ctx}: run summary");
            assert_eq!(base_stats, second.stats(), "{ctx}: statistics");
            assert_eq!(base.debug_log(), second.debug_log(), "{ctx}: debug log");
        }
    }
}

/// Contended `lrwait`/`scwait` increments with a final barrier — parks
/// cores in wait queues, keeps both networks busy, and prints a per-core
/// result. Wait-capable architectures only: on plain LRSC `scwait.w`
/// unconditionally fails, so the retry loop would never terminate (use
/// [`LRSC_COUNTER`] there).
const CONTENDED_COUNTER: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        li   t0, 12
    again:
        lrwait.w t1, (a0)
        addi t1, t1, 1
        scwait.w t2, t1, (a0)
        bnez t2, again
        addi t0, t0, -1
        bnez t0, again
        sw   zero, 0x0C(s0)      # barrier
        lw   t3, (a0)
        sw   t3, 0x38(s0)        # print the final count
        ecall
    .data
    counter: .word 0
"#;

/// The same contended counter written with classic `lr.w`/`sc.w` retry —
/// the only forward-progress idiom plain LRSC supports. Hartid-seeded
/// exponential backoff breaks the symmetric-retry livelock (without it the
/// deterministic cores displace each other's reservations forever). Keeps
/// the request network saturated with failed reservations at the
/// interrupt points.
const LRSC_COUNTER: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        rdhartid t6
        andi s10, t6, 7
        addi s10, s10, 4         # per-core initial backoff window
        li   t0, 12
    again:
        lr.w t1, (a0)
        addi t1, t1, 1
        sc.w t2, t1, (a0)
        beqz t2, ok
        mv   t5, s10
    bk:
        addi t5, t5, -1
        bnez t5, bk
        slli s10, s10, 1         # exponential growth, capped
        li   t5, 2048
        bltu s10, t5, again
        mv   s10, t5
        j    again
    ok:
        addi t0, t0, -1
        bnez t0, again
        sw   zero, 0x0C(s0)      # barrier
        lw   t3, (a0)
        sw   t3, 0x38(s0)        # print the final count
        ecall
    .data
    counter: .word 0
"#;

/// Producer/consumer over an `mwait` mailbox: consumers park on the
/// monitor while the producer delays, so snapshots land on armed
/// monitors and sleeping cores.
const MWAIT_MAILBOX: &str = r#"
    _start:
        rdhartid t0
        la   a0, mailbox
        bnez t0, consumer
    producer:
        li   t1, 600
    work:
        addi t1, t1, -1
        bnez t1, work
        li   t2, 1
        sw   t2, (a0)
        fence
        ecall
    consumer:
    park:
        mwait.w t3, zero, (a0)
        bnez t3, done
        li   t4, 32
    backoff:
        addi t4, t4, -1
        bnez t4, backoff
        j    park
    done:
        ecall
    .data
    mailbox: .word 0
"#;

#[test]
fn contended_counter_snapshot_round_trip() {
    for arch in [
        SyncArch::LrscWaitIdeal,
        SyncArch::LrscWait { slots: 2 },
        SyncArch::Colibri { queues: 2 },
    ] {
        let cfg = SimConfig::small(8, arch);
        for k in [1, 40, 400] {
            assert_snapshot_equivalent(CONTENDED_COUNTER, cfg, k, &format!("counter/{arch}"));
        }
    }
    // Plain LRSC has no wait queues; its contended path is lr/sc retry.
    let cfg = SimConfig::small(8, SyncArch::Lrsc);
    for k in [1, 40, 400] {
        assert_snapshot_equivalent(LRSC_COUNTER, cfg, k, "counter/LRSC");
    }
}

#[test]
fn mwait_mailbox_snapshot_round_trip() {
    for arch in [
        SyncArch::Lrsc,
        SyncArch::LrscWaitIdeal,
        SyncArch::Colibri { queues: 2 },
    ] {
        let cfg = SimConfig::small(4, arch);
        // 300 lands mid-delay with every consumer parked on the monitor.
        for k in [10, 300] {
            assert_snapshot_equivalent(MWAIT_MAILBOX, cfg, k, &format!("mailbox/{arch}"));
        }
    }
}

#[test]
fn restored_trace_stream_is_the_suffix() {
    let program = Assembler::new()
        .assemble(CONTENDED_COUNTER)
        .expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
    let k = 60;

    // Uninterrupted traced run.
    let full = SharedSink::new(RecordingSink::new());
    let mut base = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    base.set_tracer(Box::new(full.clone()));
    let base_summary = base.run().expect("uninterrupted run");
    let full_events = full.take().events;
    assert!(k < base_summary.cycles);

    // Snapshot from an *untraced* machine, restore into a *traced* one.
    let mut first = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    first.run_until(k).expect("run to interrupt");
    let bytes = first.snapshot();

    let tail = SharedSink::new(RecordingSink::new());
    let mut second = Machine::with_decoded(cfg, decoded).expect("loads");
    second.set_tracer(Box::new(tail.clone()));
    second.restore(&bytes).expect("restore");
    let summary = second.run().expect("resumed run");
    assert_eq!(base_summary, summary);

    let tail_events = tail.take().events;
    assert!(
        matches!(tail_events[0], (0, TraceEvent::Start { .. })),
        "restored stream starts with its own Start event"
    );
    let expected: Vec<_> = full_events
        .iter()
        .filter(|(cycle, _)| *cycle > k)
        .cloned()
        .collect();
    assert_eq!(
        &tail_events[1..],
        expected.as_slice(),
        "restored stream is the uninterrupted stream's post-snapshot suffix"
    );
}

#[test]
fn injected_stores_are_mode_and_shard_invariant() {
    // Host-injected mailbox writes must wake consumers identically in
    // every execution mode and shard count, and survive a snapshot taken
    // between injections.
    let src = r#"
        _start:
            la   a0, mailbox
            rdhartid t0
            slli t0, t0, 2
            add  a0, a0, t0          # my mailbox word
        park:
            mwait.w t3, zero, (a0)
            bnez t3, done
            j    park
        done:
            la   a1, results
            add  a1, a1, t0
            sw   t3, (a1)
            fence
            ecall
        .data
        .align 6
        mailbox: .word 0, 0, 0, 0
        .align 6
        results: .word 0, 0, 0, 0
    "#;
    let program = Assembler::new().assemble(src).expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let mailbox = program.symbol("mailbox");
    let results = program.symbol("results");
    let base_cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });

    let drive = |mut m: Machine, snapshot_mid: bool| {
        let mut m = {
            for (i, at) in [50u64, 120, 121, 400].iter().enumerate() {
                let stop = m.run_until(*at).expect("run to injection");
                assert_eq!(stop.exit, ExitReason::TargetReached);
                m.inject_store(mailbox + 4 * i as u32, 1 + i as u32);
                if snapshot_mid && i == 1 {
                    let bytes = m.snapshot();
                    let mut fresh =
                        Machine::with_decoded(base_cfg, decoded.clone()).expect("loads");
                    fresh.restore(&bytes).expect("restore");
                    m = fresh;
                }
            }
            m
        };
        let summary = m.run().expect("drain");
        assert_eq!(summary.exit, ExitReason::AllHalted);
        let values: Vec<u32> = (0..4).map(|i| m.read_word(results + 4 * i)).collect();
        assert_eq!(values, vec![1, 2, 3, 4], "every consumer saw its value");
        (summary, m.stats(), m.debug_log().to_vec())
    };

    let reference = drive(
        Machine::with_decoded(base_cfg, decoded.clone()).expect("loads"),
        false,
    );
    for (mode, shards) in COMBOS {
        let cfg = configured(base_cfg, mode, shards);
        let same = drive(
            Machine::with_decoded(cfg, decoded.clone()).expect("loads"),
            false,
        );
        assert_eq!(reference, same, "{mode:?}/{shards}: injected run");
        let snapped = drive(
            Machine::with_decoded(cfg, decoded.clone()).expect("loads"),
            true,
        );
        assert_eq!(
            reference, snapped,
            "{mode:?}/{shards}: snapshot mid-injection"
        );
    }
}

#[test]
fn restore_rejects_malformed_snapshots() {
    let program = Assembler::new()
        .assemble(CONTENDED_COUNTER)
        .expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let cfg = SimConfig::small(4, SyncArch::Lrsc);
    let mut m = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    m.run_until(20).expect("run");
    let good = m.snapshot();

    let bad_cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty", Vec::new()),
        ("truncated", good[..good.len() / 2].to_vec()),
        ("bad magic", {
            let mut b = good.clone();
            b[0] = b'X';
            b
        }),
        ("bad version", {
            let mut b = good.clone();
            b[4] = 0xFF;
            b
        }),
        ("trailing bytes", {
            let mut b = good.clone();
            b.push(0);
            b
        }),
    ];
    for (what, bytes) in bad_cases {
        let mut target = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
        let err = target.restore(&bytes).expect_err(what);
        assert!(
            matches!(err, SimError::BadSnapshot { .. }),
            "{what}: typed error, got {err:?}"
        );
    }

    // Wrong architecture and wrong geometry are rejected up front.
    let mut other_arch = Machine::with_decoded(
        SimConfig::small(4, SyncArch::Colibri { queues: 2 }),
        decoded.clone(),
    )
    .expect("loads");
    let err = other_arch.restore(&good).expect_err("arch mismatch");
    assert!(matches!(err, SimError::BadSnapshot { .. }));
    assert!(err.to_string().contains("architecture"), "{err}");

    let mut other_geom =
        Machine::with_decoded(SimConfig::small(8, SyncArch::Lrsc), decoded).expect("loads");
    let err = other_geom.restore(&good).expect_err("geometry mismatch");
    assert!(matches!(err, SimError::BadSnapshot { .. }));
    assert!(err.to_string().contains("geometry"), "{err}");
}

#[test]
fn restore_rejects_stale_program_image() {
    // A snapshot must never resume over a different text image: the
    // translated stepper would execute superblocks lowered from the wrong
    // program (and the interpreter would silently diverge just the same).
    let program = Assembler::new()
        .assemble(CONTENDED_COUNTER)
        .expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let cfg = SimConfig::small(4, SyncArch::LrscWaitIdeal);
    let mut m = Machine::with_decoded(cfg, decoded).expect("loads");
    m.run_until(20).expect("run");
    let bytes = m.snapshot();

    // Same geometry and architecture, different program.
    let other = Assembler::new().assemble(MWAIT_MAILBOX).expect("assembles");
    let other = Machine::decode(&other).expect("decodes");
    for (mode, shards) in COMBOS {
        let mut target =
            Machine::with_decoded(configured(cfg, mode, shards), other.clone()).expect("loads");
        let err = target.restore(&bytes).expect_err("stale image");
        assert!(
            matches!(err, SimError::BadSnapshot { .. }),
            "{mode:?}/{shards}: typed error, got {err:?}"
        );
        assert!(
            err.to_string().contains("program image"),
            "{mode:?}/{shards}: {err}"
        );
    }
}

#[test]
fn restore_reuses_cached_translation() {
    // Every translated machine built from (or restored over) the same
    // decoded program must share one translation — the cache lives on the
    // `DecodedProgram`, and `restore` must not rebuild or replace it.
    let program = Assembler::new()
        .assemble(CONTENDED_COUNTER)
        .expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let cfg = configured(
        SimConfig::small(4, SyncArch::Colibri { queues: 2 }),
        ExecMode::Translated,
        1,
    );

    let mut first = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    let original = std::sync::Arc::clone(first.translation().expect("translated mode"));
    first.run_until(40).expect("run");
    let bytes = first.snapshot();

    let mut second = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    assert!(
        std::sync::Arc::ptr_eq(second.translation().expect("translated"), &original),
        "clones of one DecodedProgram share one translation"
    );
    second.restore(&bytes).expect("restore");
    assert!(
        std::sync::Arc::ptr_eq(second.translation().expect("translated"), &original),
        "restore must keep the cached translation, not rebuild it"
    );
    let summary = second.run().expect("resumed run");
    assert_eq!(summary.exit, ExitReason::AllHalted);

    // A non-translated machine carries no translation at all.
    let plain =
        Machine::with_decoded(configured(cfg, ExecMode::EventDriven, 1), decoded).expect("loads");
    assert!(plain.translation().is_none());
}

#[test]
fn run_until_is_transparent() {
    // Chopping a run into arbitrary run_until segments must not change
    // anything, including the fast-forward stall accounting.
    let program = Assembler::new().assemble(MWAIT_MAILBOX).expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");
    let cfg = SimConfig::small(4, SyncArch::LrscWaitIdeal);

    let mut base = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    let base_summary = base.run().expect("uninterrupted");

    let mut chopped = Machine::with_decoded(cfg, decoded).expect("loads");
    let mut target = 7;
    loop {
        let summary = chopped.run_until(target).expect("segment");
        if summary.exit != ExitReason::TargetReached {
            assert_eq!(base_summary, summary, "chopped run summary");
            break;
        }
        assert!(summary.cycles >= target);
        target += 13;
    }
    assert_eq!(base.stats(), chopped.stats(), "chopped run statistics");
}
