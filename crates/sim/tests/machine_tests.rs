//! Full-machine integration tests on small configurations.

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExitReason, Machine, SimConfig, SimError};

fn run_program(src: &str, cfg: SimConfig) -> Machine {
    let program = Assembler::new().assemble(src).expect("assembles");
    let mut m = Machine::new(cfg, &program).expect("loads");
    let summary = m.run().expect("runs");
    assert_eq!(summary.exit, ExitReason::AllHalted, "watchdog fired");
    m
}

#[test]
fn store_and_load_round_trip() {
    let src = r#"
        _start:
            rdhartid t0
            bnez t0, done          # only core 0 works
            li   t1, 0xABCD
            la   t2, slot
            sw   t1, (t2)
            lw   t3, (t2)
            la   t4, result
            sw   t3, (t4)
            fence
        done:
            ecall
        .data
        slot:   .word 0
        result: .word 0
    "#;
    let m = run_program(src, SimConfig::small(2, SyncArch::Lrsc));
    let program = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(program.symbol("result")), 0xABCD);
}

#[test]
fn subword_accesses() {
    let src = r#"
        _start:
            rdhartid t0
            bnez t0, done
            la   t2, buf
            li   t1, 0x11
            sb   t1, 0(t2)
            li   t1, 0x22
            sb   t1, 1(t2)
            li   t1, 0x3344
            sh   t1, 2(t2)
            fence
            lbu  a0, 1(t2)         # 0x22
            lhu  a1, 2(t2)         # 0x3344
            la   t3, out
            sw   a0, 0(t3)
            sw   a1, 4(t3)
            fence
        done:
            ecall
        .data
        buf: .word 0
        out: .word 0, 0
    "#;
    let m = run_program(src, SimConfig::small(1, SyncArch::Lrsc));
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("buf")), 0x3344_2211);
    assert_eq!(m.read_word(p.symbol("out")), 0x22);
    assert_eq!(m.read_word(p.symbol("out") + 4), 0x3344);
}

#[test]
fn amo_add_all_cores() {
    let src = r#"
        _start:
            la   a0, counter
            li   a1, 1
            li   t0, 10
        loop:
            amoadd.w a2, a1, (a0)
            addi t0, t0, -1
            bnez t0, loop
            ecall
        .data
        counter: .word 0
    "#;
    let m = run_program(src, SimConfig::small(8, SyncArch::Lrsc));
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("counter")), 80);
}

#[test]
fn lrsc_retry_loop_conserves_updates() {
    let src = r#"
        _start:
            la   a0, counter
            li   t0, 20
        retry:
            lr.w t1, (a0)
            addi t1, t1, 1
            sc.w t2, t1, (a0)
            bnez t2, retry
            addi t0, t0, -1
            bnez t0, retry2
            j    out
        retry2:
            j    retry
        out:
            ecall
        .data
        counter: .word 0
    "#;
    let m = run_program(src, SimConfig::small(4, SyncArch::Lrsc));
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("counter")), 80);
    let stats = m.stats();
    assert!(
        stats.adapters.sc_failure > 0,
        "contention must cause retries"
    );
}

#[test]
fn lrscwait_conserves_updates_without_retries() {
    let src = r#"
        _start:
            la   a0, counter
            li   t0, 20
        again:
            lrwait.w t1, (a0)
            addi t1, t1, 1
            scwait.w t2, t1, (a0)
            bnez t2, again      # only fail-fast paths retry
            addi t0, t0, -1
            bnez t0, again
            ecall
        .data
        counter: .word 0
    "#;
    for arch in [
        SyncArch::LrscWaitIdeal,
        SyncArch::LrscWait { slots: 2 },
        SyncArch::Colibri { queues: 4 },
        SyncArch::Colibri { queues: 1 },
    ] {
        let m = run_program(src, SimConfig::small(4, arch));
        let p = Assembler::new().assemble(src).unwrap();
        assert_eq!(m.read_word(p.symbol("counter")), 80, "{arch}");
        if matches!(arch, SyncArch::LrscWaitIdeal) {
            assert_eq!(m.stats().adapters.scwait_failure, 0, "ideal never fails");
        }
    }
}

#[test]
fn colibri_uses_qnode_messages() {
    let src = r#"
        _start:
            la   a0, counter
            li   t0, 8
        again:
            lrwait.w t1, (a0)
            addi t1, t1, 1
            scwait.w t2, t1, (a0)
            bnez t2, again
            addi t0, t0, -1
            bnez t0, again
            ecall
        .data
        counter: .word 0
    "#;
    let m = run_program(src, SimConfig::small(4, SyncArch::Colibri { queues: 1 }));
    let stats = m.stats();
    assert!(
        stats.adapters.successor_updates > 0,
        "contention must build the distributed queue"
    );
    assert!(stats.adapters.wakeups > 0);
}

#[test]
fn barrier_synchronizes_phases() {
    // Core 0 writes before the barrier; others read after it.
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            rdhartid t0
            bnez t0, reader
            la   t1, flag
            li   t2, 777
            sw   t2, (t1)
            fence
        reader:
            sw   zero, 0x0C(s0)    # barrier
            la   t1, flag
            lw   t3, (t1)
            la   t4, results
            rdhartid t0
            slli t5, t0, 2
            add  t4, t4, t5
            sw   t3, (t4)
            fence
            ecall
        .data
        flag: .word 0
        .bss
        results: .space 16
    "#;
    let m = run_program(src, SimConfig::small(4, SyncArch::Lrsc));
    let p = Assembler::new().assemble(src).unwrap();
    for c in 0..4 {
        assert_eq!(m.read_word(p.symbol("results") + 4 * c), 777, "core {c}");
    }
}

#[test]
fn mwait_producer_consumer() {
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            rdhartid t0
            la   a0, mailbox
            bnez t0, consumer
        producer:
            li   t1, 5000
        spinwork:                 # give the consumer time to arm the monitor
            addi t1, t1, -1
            bnez t1, spinwork
            li   t2, 42
            sw   t2, (a0)
            fence
            ecall
        consumer:
            mwait.w t3, zero, (a0)   # sleep until mailbox != 0
            la   t4, got
            sw   t3, (t4)
            fence
            ecall
        .data
        mailbox: .word 0
        got:     .word 0
    "#;
    for arch in [SyncArch::LrscWaitIdeal, SyncArch::Colibri { queues: 2 }] {
        let m = run_program(src, SimConfig::small(2, arch));
        let p = Assembler::new().assemble(src).unwrap();
        assert_eq!(m.read_word(p.symbol("got")), 42, "{arch}");
    }
}

#[test]
fn mwait_expected_mismatch_returns_immediately() {
    let src = r#"
        _start:
            la   a0, mailbox
            li   t0, 1             # expected = 1, but memory holds 9
            mwait.w t1, t0, (a0)
            la   t2, got
            sw   t1, (t2)
            fence
            ecall
        .data
        mailbox: .word 9
        got:     .word 0
    "#;
    let m = run_program(src, SimConfig::small(1, SyncArch::Colibri { queues: 1 }));
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("got")), 9);
}

#[test]
fn region_markers_and_op_counts() {
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            li   t0, 1
            sw   t0, 0x08(s0)     # region start
            li   t1, 25
        loop:
            sw   t0, 0x04(s0)     # one op
            addi t1, t1, -1
            bnez t1, loop
            sw   zero, 0x08(s0)   # region end
            ecall
    "#;
    let m = run_program(src, SimConfig::small(2, SyncArch::Lrsc));
    let stats = m.stats();
    assert_eq!(stats.total_ops(), 50);
    assert!(stats.region_window().is_some());
    assert!(stats.throughput().unwrap() > 0.0);
}

#[test]
fn mmio_args_and_ids() {
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            lw   t0, 0x18(s0)      # arg0
            lw   t1, 0x14(s0)      # num cores
            lw   t2, 0x10(s0)      # hartid
            add  t0, t0, t1
            add  t0, t0, t2
            la   t3, out
            sw   t0, (t3)
            fence
            ecall
        .data
        out: .word 0
    "#;
    let cfg = SimConfig::builder().cores(1).arg(0, 100).build().unwrap();
    let m = run_program(src, cfg);
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("out")), 101); // arg0 (100) + num_cores (1) + hartid (0)
}

#[test]
fn debug_print_log() {
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            li   t0, 123
            sw   t0, 0x38(s0)
            ecall
    "#;
    let m = run_program(src, SimConfig::small(1, SyncArch::Lrsc));
    assert_eq!(m.debug_log().len(), 1);
    assert_eq!(m.debug_log()[0].2, 123);
}

#[test]
fn watchdog_fires_on_infinite_loop() {
    let src = "_start: j _start\n";
    let program = Assembler::new().assemble(src).unwrap();
    let cfg = SimConfig::builder()
        .cores(1)
        .max_cycles(1000)
        .build()
        .unwrap();
    let mut m = Machine::new(cfg, &program).unwrap();
    let summary = m.run().unwrap();
    assert_eq!(summary.exit, ExitReason::Watchdog);
    assert_eq!(summary.cycles, 1000);
}

#[test]
fn fault_on_wild_store() {
    let src = "_start: li t0, 0x00F00000\nsw zero, (t0)\necall\n";
    let program = Assembler::new().assemble(src).unwrap();
    let mut m = Machine::new(SimConfig::small(1, SyncArch::Lrsc), &program).unwrap();
    match m.run() {
        Err(SimError::Fault { what, .. }) => assert!(what.contains("store")),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn breakpoint_reports_line() {
    let src = "_start: nop\nebreak\n";
    let program = Assembler::new().assemble(src).unwrap();
    let mut m = Machine::new(SimConfig::small(1, SyncArch::Lrsc), &program).unwrap();
    match m.run() {
        Err(SimError::Breakpoint { line, .. }) => assert_eq!(line, Some(2)),
        other => panic!("expected breakpoint, got {other:?}"),
    }
}

#[test]
fn sleeping_cores_produce_no_traffic() {
    // One lrwait sleeper vs one lr/sc poller on a blocked location: the
    // waiter's sleep cycles dominate and it issues almost no requests.
    let src = r#"
        _start:
            rdhartid t0
            la   a0, lock
            bnez t0, waiter
        holder:                    # core 0 holds the queue head for a while
            lrwait.w t1, (a0)
            li   t2, 2000
        hold:
            addi t2, t2, -1
            bnez t2, hold
            addi t1, t1, 1
            scwait.w t3, t1, (a0)
            ecall
        waiter:
            lrwait.w t1, (a0)
            addi t1, t1, 1
            scwait.w t3, t1, (a0)
            ecall
        .data
        lock: .word 0
    "#;
    let m = run_program(src, SimConfig::small(2, SyncArch::Colibri { queues: 1 }));
    let stats = m.stats();
    // The waiter slept most of the run.
    assert!(
        stats.cores[1].sleep_cycles > 1500,
        "waiter should sleep, got {:?}",
        stats.cores[1]
    );
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("lock")), 2);
}

#[test]
fn full_mempool_geometry_boots() {
    // All 256 cores increment one counter with amoadd on the real geometry.
    let src = r#"
        _start:
            la   a0, counter
            li   a1, 1
            amoadd.w a2, a1, (a0)
            ecall
        .data
        counter: .word 0
    "#;
    let m = run_program(src, SimConfig::mempool(SyncArch::Lrsc));
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("counter")), 256);
}

#[test]
fn sharded_machine_runs_and_reports_shards() {
    // A worker-pool machine boots, computes the right answer, and the
    // pool is joined cleanly on drop (no hang, no panic). Equivalence to
    // the single-sharded machine is proven exhaustively in
    // `differential.rs`; this is the plain functional smoke.
    let src = r#"
        _start:
            la   a0, counter
            li   a1, 1
            amoadd.w a2, a1, (a0)
            ecall
        .data
        counter: .word 0
    "#;
    let cfg = SimConfig::builder()
        .cores(8)
        .arch(SyncArch::Colibri { queues: 2 })
        .shards(4)
        .build()
        .unwrap();
    let m = run_program(src, cfg);
    assert_eq!(m.shards(), 4);
    let p = Assembler::new().assemble(src).unwrap();
    assert_eq!(m.read_word(p.symbol("counter")), 8);
}

#[test]
fn sharded_machine_surfaces_lowest_core_fault() {
    // Every core stores through a wild pointer; the reported error must
    // name core 0 — the same core a single-sharded walk faults on — no
    // matter which shard's worker hit its fault first.
    let src = r#"
        _start:
            li   t0, 0x00F00000
            sw   t0, (t0)
            ecall
    "#;
    let program = Assembler::new().assemble(src).unwrap();
    for shards in [1usize, 4] {
        let cfg = SimConfig::builder()
            .cores(8)
            .shards(shards)
            .build()
            .unwrap();
        let mut m = Machine::new(cfg, &program).unwrap();
        match m.run() {
            Err(SimError::Fault { core, .. }) => {
                assert_eq!(core, 0, "{shards} shards: lowest-core fault wins");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }
}
