//! Differential equivalence suite: the event-driven scheduler and the
//! translated superblock stepper must match the naive reference stepper
//! bit-for-bit — cycle counts, exit reasons, every statistic, and the
//! debug log — on every synchronization architecture, **and for every
//! shard count**: bank-sharded parallel execution (`SimConfig::shards >
//! 1`) must be indistinguishable from the single-threaded walk. The
//! kernel-level matrix (histogram/queue/matmul through the bench
//! `Experiment`) lives in the workspace-level `tests/differential.rs`;
//! this file exercises the machine directly with targeted assembly.

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExecMode, ExitReason, Machine, RunSummary, SimConfig, SimStats};

/// Runs `src` under all three execution modes — and, for each mode, both
/// a single shard and a multi-shard worker pool — and asserts
/// bit-identical observable results, returning the (identical) summary
/// and stats.
fn assert_equivalent(src: &str, cfg: SimConfig, what: &str) -> (RunSummary, SimStats) {
    let program = Assembler::new().assemble(src).expect("assembles");
    let decoded = Machine::decode(&program).expect("decodes");

    let mut fast = Machine::with_decoded(cfg, decoded.clone()).expect("loads");
    assert_eq!(fast.mode(), ExecMode::EventDriven, "event-driven default");
    assert_eq!(fast.shards(), 1, "single shard default");
    let fast_summary = fast.run().expect("fast run");

    // The shard count must be observationally irrelevant: pick one that
    // does not divide the geometry evenly so range remainders are covered.
    let shards = cfg.topology.num_cores.min(3);
    for (mode, label) in [
        (ExecMode::Reference, "reference"),
        (ExecMode::Translated, "translated"),
        (ExecMode::EventDriven, "sharded event-driven"),
        (ExecMode::Reference, "sharded reference"),
        (ExecMode::Translated, "sharded translated"),
    ] {
        let mut other_cfg = cfg;
        other_cfg.exec_mode = mode;
        if label.starts_with("sharded") {
            other_cfg.shards = shards;
        }
        let mut other = Machine::with_decoded(other_cfg, decoded.clone()).expect("loads");
        let other_summary = other.run().expect(label);
        assert_eq!(fast_summary, other_summary, "{what}: {label} run summary");
        assert_eq!(fast.stats(), other.stats(), "{what}: {label} statistics");
        assert_eq!(
            fast.debug_log(),
            other.debug_log(),
            "{what}: {label} debug log"
        );
    }
    (fast_summary, fast.stats())
}

fn all_archs() -> [SyncArch; 4] {
    [
        SyncArch::Lrsc,
        SyncArch::LrscWaitIdeal,
        SyncArch::LrscWait { slots: 2 },
        SyncArch::Colibri { queues: 2 },
    ]
}

#[test]
fn amoadd_contention_is_equivalent() {
    let src = r#"
        _start:
            la   a0, counter
            li   a1, 1
            li   t0, 12
        loop:
            amoadd.w a2, a1, (a0)
            addi t0, t0, -1
            bnez t0, loop
            ecall
        .data
        counter: .word 0
    "#;
    for arch in all_archs() {
        assert_equivalent(src, SimConfig::small(8, arch), "amoadd");
    }
}

#[test]
fn lrsc_retry_contention_is_equivalent() {
    let src = r#"
        _start:
            la   a0, counter
            li   t0, 16
        retry:
            lr.w t1, (a0)
            addi t1, t1, 1
            sc.w t2, t1, (a0)
            bnez t2, retry
            addi t0, t0, -1
            bnez t0, retry
            ecall
        .data
        counter: .word 0
    "#;
    let (_, stats) = assert_equivalent(src, SimConfig::small(4, SyncArch::Lrsc), "lr/sc");
    assert!(stats.adapters.sc_failure > 0, "contention must retry");
}

#[test]
fn lrscwait_sleepers_are_equivalent() {
    let src = r#"
        _start:
            la   a0, counter
            li   t0, 16
        again:
            lrwait.w t1, (a0)
            addi t1, t1, 1
            scwait.w t2, t1, (a0)
            bnez t2, again
            addi t0, t0, -1
            bnez t0, again
            ecall
        .data
        counter: .word 0
    "#;
    for arch in [
        SyncArch::LrscWaitIdeal,
        SyncArch::LrscWait { slots: 2 },
        SyncArch::Colibri { queues: 4 },
        SyncArch::Colibri { queues: 1 },
    ] {
        let (_, stats) = assert_equivalent(src, SimConfig::small(8, arch), "lrwait");
        assert!(
            stats.total_sleep_cycles() > 0,
            "{arch}: waiters must have slept"
        );
    }
}

#[test]
fn barrier_phases_are_equivalent() {
    // Repeated barriers with skewed arrival (core-id-dependent delay
    // loops) exercise the positional release accounting: within the
    // releasing cycle the reference charges barrier cycles to cores
    // visited before the releaser and stall cycles to those after it.
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            rdhartid s1
            li   s2, 3              # three barrier rounds
        round:
            addi t0, s1, 1
            slli t0, t0, 4          # delay proportional to hart id
        spin:
            addi t0, t0, -1
            bnez t0, spin
            sw   zero, 0x0C(s0)     # barrier
            addi s2, s2, -1
            bnez s2, round
            ecall
    "#;
    for cores in [2usize, 4, 8] {
        let (_, stats) = assert_equivalent(
            src,
            SimConfig::small(cores, SyncArch::Lrsc),
            "skewed barrier",
        );
        assert!(
            stats.cores.iter().any(|c| c.barrier_cycles > 0),
            "someone must have waited"
        );
    }
}

#[test]
fn barrier_with_early_halts_is_equivalent() {
    // Half the cores halt immediately; a halting core is the barrier
    // releaser for the rest.
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            rdhartid t0
            andi t1, t0, 1
            bnez t1, quit           # odd cores halt without joining
            sw   zero, 0x0C(s0)     # even cores wait at the barrier
            sw   zero, 0x0C(s0)
        quit:
            ecall
    "#;
    assert_equivalent(src, SimConfig::small(8, SyncArch::Lrsc), "halting barrier");
}

#[test]
fn mwait_producer_consumer_is_equivalent() {
    let src = r#"
        _start:
            rdhartid t0
            la   a0, mailbox
            bnez t0, consumer
        producer:
            li   t1, 3000
        work:
            addi t1, t1, -1
            bnez t1, work
            li   t2, 42
            sw   t2, (a0)
            fence
            ecall
        consumer:
            mwait.w t3, zero, (a0)
            la   t4, got
            sw   t3, (t4)
            fence
            ecall
        .data
        mailbox: .word 0
        got:     .word 0
    "#;
    for arch in [SyncArch::LrscWaitIdeal, SyncArch::Colibri { queues: 2 }] {
        let (_, stats) = assert_equivalent(src, SimConfig::small(4, arch), "mwait");
        assert!(stats.cores[1].sleep_cycles > 1000, "{arch}: consumer slept");
    }
}

#[test]
fn debug_prints_interleave_identically() {
    // Two cores print every iteration; the per-cycle interleaving of the
    // MMIO log is visit-order-sensitive and must match exactly.
    let src = r#"
        .equ MMIO, 0xFFFF0000
        _start:
            li   s0, MMIO
            rdhartid s1
            li   t0, 50
        loop:
            slli t1, t0, 8
            or   t1, t1, s1
            sw   t1, 0x38(s0)      # print (iter << 8) | hartid
            addi t0, t0, -1
            bnez t0, loop
            ecall
    "#;
    assert_equivalent(src, SimConfig::small(4, SyncArch::Lrsc), "debug prints");
}

#[test]
fn spinning_watchdog_is_equivalent() {
    // A pure spin loop never sleeps: fast-forward must not fire, and the
    // watchdog exit must be identical.
    let src = "_start: j _start\n";
    let cfg = SimConfig::builder()
        .cores(2)
        .max_cycles(2000)
        .build()
        .unwrap();
    let (summary, _) = assert_equivalent(src, cfg, "spin watchdog");
    assert_eq!(summary.exit, ExitReason::Watchdog);
    assert_eq!(summary.cycles, 2000);
}

#[test]
fn all_asleep_watchdog_is_equivalent_and_fast() {
    // Every core parks on a monitor nobody ever writes: the event-driven
    // run must fast-forward straight to the watchdog while reporting the
    // exact same statistics as the reference grinding through every cycle.
    let src = r#"
        _start:
            la   a0, mailbox
            mwait.w t0, zero, (a0)
            ecall
        .data
        mailbox: .word 0
    "#;
    let cfg = SimConfig::builder()
        .cores(4)
        .arch(SyncArch::Colibri { queues: 2 })
        .max_cycles(100_000)
        .build()
        .unwrap();
    let (summary, stats) = assert_equivalent(src, cfg, "all-asleep watchdog");
    assert_eq!(summary.exit, ExitReason::Watchdog);
    assert_eq!(summary.cycles, 100_000);
    // Nearly every cycle of every core was spent asleep — and the lazy
    // accounting must say so even though the sleep never ended.
    assert!(
        stats.total_sleep_cycles() > 4 * 99_000,
        "sleep cycles: {}",
        stats.total_sleep_cycles()
    );
}

#[test]
fn fast_forward_jumps_to_watchdog_instantly() {
    // The acceptance scenario for fast-forwarding: a deadlocked (all
    // parked) machine exits at the watchdog limit after O(events) work —
    // a huge limit would take minutes on the reference stepper but is
    // instant here.
    let src = r#"
        _start:
            la   a0, mailbox
            mwait.w t0, zero, (a0)
            ecall
        .data
        mailbox: .word 0
    "#;
    let program = Assembler::new().assemble(src).unwrap();
    let cfg = SimConfig::builder()
        .cores(8)
        .arch(SyncArch::Colibri { queues: 2 })
        .max_cycles(5_000_000_000)
        .build()
        .unwrap();
    let started = std::time::Instant::now();
    let mut m = Machine::new(cfg, &program).unwrap();
    let summary = m.run().unwrap();
    assert_eq!(summary.exit, ExitReason::Watchdog);
    assert_eq!(summary.cycles, 5_000_000_000, "watchdog honored exactly");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "5G all-asleep cycles must be skipped, took {:?}",
        started.elapsed()
    );
}

#[test]
fn store_backpressure_is_equivalent() {
    // Hammer one bank with posted stores from every core to exercise
    // outbox backpressure, injection stalls and head-of-line blocking.
    let src = r#"
        _start:
            la   a0, slot
            li   t0, 64
        loop:
            sw   t0, (a0)
            addi t0, t0, -1
            bnez t0, loop
            fence
            ecall
        .data
        slot: .word 0
    "#;
    let (_, stats) = assert_equivalent(src, SimConfig::small(8, SyncArch::Lrsc), "store storm");
    assert!(
        stats.cores.iter().any(|c| c.stall_cycles > 0),
        "backpressure must stall someone"
    );
}

#[test]
fn step_cycle_equivalence_without_run_loop() {
    // Drive both machines manually through step_cycle (no fast-forward
    // path at all) and compare statistics at every cycle boundary.
    let src = r#"
        _start:
            la   a0, counter
            li   a1, 1
            li   t0, 4
        loop:
            amoadd.w a2, a1, (a0)
            addi t0, t0, -1
            bnez t0, loop
            ecall
        .data
        counter: .word 0
    "#;
    let program = Assembler::new().assemble(src).unwrap();
    let decoded = Machine::decode(&program).unwrap();
    let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
    let mut fast = Machine::with_decoded(cfg, decoded.clone()).unwrap();
    let mut ref_cfg = cfg;
    ref_cfg.exec_mode = ExecMode::Reference;
    let mut reference = Machine::with_decoded(ref_cfg, decoded.clone()).unwrap();
    // Direct step_cycle has no run-ahead horizon, so the translated
    // stepper must stay per-cycle exact here too.
    let mut trans_cfg = cfg;
    trans_cfg.exec_mode = ExecMode::Translated;
    let mut translated = Machine::with_decoded(trans_cfg, decoded).unwrap();
    for cycle in 0..400 {
        fast.step_cycle().unwrap();
        reference.step_cycle().unwrap();
        translated.step_cycle().unwrap();
        assert_eq!(fast.cycles(), reference.cycles());
        assert_eq!(fast.stats(), reference.stats(), "divergence at {cycle}");
        assert_eq!(fast.cycles(), translated.cycles());
        assert_eq!(
            fast.stats(),
            translated.stats(),
            "translated divergence at {cycle}"
        );
    }
}
