//! Proof that steady-state simulation performs zero heap allocations per
//! cycle: a counting global allocator wraps the system allocator, the
//! machine is warmed up until every scratch buffer and queue has reached
//! its high-water capacity, and a long measured window must then allocate
//! nothing at all — in `step_cycle`, `Network::advance`, the adapters and
//! the outbox bookkeeping alike.
//!
//! This binary holds a single test so no concurrent test thread can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lrscwait_asm::Assembler;
use lrscwait_core::SyncArch;
use lrscwait_sim::{ExecMode, Machine, SimConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_cycles_do_not_allocate() {
    single_shard_steady_state();
    sharded_steady_state();
    translated_steady_state();
}

fn single_shard_steady_state() {
    // High-contention mix: AMO traffic, lrwait/scwait sleep-wake churn and
    // posted stores, running forever (the harness steps manually).
    let src = r#"
        _start:
            la   a0, counter
            la   a1, wait_slot
            la   a2, scratch
            li   a3, 1
        loop:
            amoadd.w t0, a3, (a0)
            sw   t0, (a2)
            lrwait.w t1, (a1)
            addi t1, t1, 1
            scwait.w t2, t1, (a1)
            j    loop
        .data
        counter:   .word 0
        wait_slot: .word 0
        scratch:   .word 0
    "#;
    let program = Assembler::new().assemble(src).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(8)
        .arch(SyncArch::Colibri { queues: 2 })
        .max_cycles(u64::MAX)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");

    // Warm up: let every queue, scratch vector and stat buffer reach its
    // steady-state capacity.
    for _ in 0..20_000 {
        machine.step_cycle().expect("warmup cycle");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        machine.step_cycle().expect("measured cycle");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state cycles must not touch the heap"
    );

    // The machine is genuinely still doing work, not quiesced.
    let stats = machine.stats();
    assert!(stats.adapters.amos > 1000, "workload kept running");
    assert!(stats.total_sleep_cycles() > 0, "waiters slept");
}

/// The same proof with a worker pool (`shards > 1`): dispatching the two
/// parallel phases, the spin-then-park wake protocol, and the per-shard
/// scratch merging must all stay off the heap once warm — the persistent
/// pool spawns its threads at machine construction, never per cycle.
fn sharded_steady_state() {
    let src = r#"
        _start:
            la   a0, counter
            la   a1, wait_slot
            la   a2, scratch
            li   a3, 1
        loop:
            amoadd.w t0, a3, (a0)
            sw   t0, (a2)
            lrwait.w t1, (a1)
            addi t1, t1, 1
            scwait.w t2, t1, (a1)
            j    loop
        .data
        counter:   .word 0
        wait_slot: .word 0
        scratch:   .word 0
    "#;
    let program = Assembler::new().assemble(src).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(8)
        .arch(SyncArch::Colibri { queues: 2 })
        .shards(2)
        .max_cycles(u64::MAX)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");

    // Warm up: scratch vectors, queues, and the workers' first-dispatch
    // lazy state (TLS, stack) all reach steady state.
    for _ in 0..8_000 {
        machine.step_cycle().expect("warmup cycle");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..4_000 {
        machine.step_cycle().expect("measured cycle");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sharded steady-state cycles must not touch the heap"
    );

    let stats = machine.stats();
    assert!(stats.adapters.amos > 400, "sharded workload kept running");
}

/// The translated fast path must be just as allocation-free: the
/// micro-op image is built once at machine construction, and
/// `run_block` threads through it with no heap traffic.
fn translated_steady_state() {
    let src = r#"
        _start:
            la   a0, counter
            la   a2, scratch
            li   a3, 1
        loop:
            li   t1, 32
        busy:
            addi t1, t1, -1
            bnez t1, busy
            amoadd.w t0, a3, (a0)
            sw   t0, (a2)
            j    loop
        .data
        counter: .word 0
        scratch: .word 0
    "#;
    let program = Assembler::new().assemble(src).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(8)
        .arch(SyncArch::Colibri { queues: 2 })
        .exec_mode(ExecMode::Translated)
        .max_cycles(u64::MAX)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");

    for _ in 0..20_000 {
        machine.step_cycle().expect("warmup cycle");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        machine.step_cycle().expect("measured cycle");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "translated steady-state cycles must not touch the heap"
    );

    let stats = machine.stats();
    assert!(
        stats.adapters.amos > 1000,
        "translated workload kept running"
    );
}
