//! Host-side profiler tests: enabling the phase profiler must not
//! perturb anything the simulation observes — run summaries, statistics,
//! debug logs, and the full trace stream stay bit-identical with the
//! profiler on or off, for every execution mode and shard count. The
//! profile itself must be internally consistent: phase times sum exactly
//! to the sampled time, which never exceeds wall time.

use lrscwait_asm::Assembler;
use lrscwait_core::{SyncArch, SyncEvent};
use lrscwait_sim::{ExecMode, Machine, ProfilerConfig, SimConfig, SimStats};
use lrscwait_trace::{RecordingSink, SharedSink, TraceEvent};

const KERNEL: &str = r#"
    .equ MMIO, 0xFFFF0000
    _start:
        li   s0, MMIO
        la   a0, counter
        li   t2, 6
    loop:
        lrwait.w t0, (a0)
        addi     t0, t0, 1
        scwait.w t1, t0, (a0)
        bnez     t1, loop
        addi     t2, t2, -1
        bnez     t2, loop
        sw   zero, 0x0C(s0)     # barrier
        sw   t0, 0x08(s0)       # print the count
        ecall
    .data
    counter: .word 0
"#;

struct Observed {
    cycles: u64,
    stats: SimStats,
    debug_log: Vec<(u64, u32, u32)>,
    trace: Vec<(u64, TraceEvent)>,
}

fn run_observed(mode: ExecMode, shards: usize, profiled: bool) -> Observed {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(4)
        .arch(SyncArch::LrscWait { slots: 2 })
        .exec_mode(mode)
        .shards(shards)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");
    let sink = SharedSink::new(RecordingSink::new());
    machine.set_tracer(Box::new(sink.clone()));
    if profiled {
        // Sample every cycle so the profiler's measuring paths all run.
        machine.enable_profiler(ProfilerConfig { sample_every: 1 });
        assert!(machine.profiling());
    }
    let summary = machine.run().expect("runs");
    if profiled {
        let profile = machine.profile().expect("profiling machine has a profile");
        // The event-driven modes fast-forward idle stretches; only the
        // stepped (non-skipped) cycles are profiled.
        assert!(profile.stepped_cycles > 0);
        assert!(profile.stepped_cycles <= summary.cycles);
        assert_eq!(
            profile.stepped_cycles, profile.sampled_cycles,
            "sample_every = 1 samples every stepped cycle"
        );
    } else {
        assert!(
            machine.profile().is_none(),
            "off profiler yields no profile"
        );
    }
    Observed {
        cycles: summary.cycles,
        stats: machine.stats(),
        debug_log: machine.debug_log().to_vec(),
        trace: sink.take().events,
    }
}

#[test]
fn profiler_never_perturbs_simulation() {
    for (mode, shards) in [
        (ExecMode::EventDriven, 1),
        (ExecMode::EventDriven, 3),
        (ExecMode::Reference, 1),
        (ExecMode::Reference, 2),
        (ExecMode::Translated, 1),
        (ExecMode::Translated, 3),
    ] {
        let off = run_observed(mode, shards, false);
        let on = run_observed(mode, shards, true);
        let what = format!("{mode:?} x {shards} shards");
        assert_eq!(off.cycles, on.cycles, "{what}: cycle count");
        assert_eq!(off.stats, on.stats, "{what}: statistics");
        assert_eq!(off.debug_log, on.debug_log, "{what}: debug log");
        assert_eq!(off.trace.len(), on.trace.len(), "{what}: trace length");
        assert_eq!(off.trace, on.trace, "{what}: trace stream");
        assert!(
            off.trace.iter().any(|(_, e)| matches!(
                e,
                TraceEvent::Sync {
                    event: SyncEvent::ScResult { success: true, .. },
                    ..
                }
            )),
            "{what}: the kernel actually exercised the sync path"
        );
    }
}

#[test]
fn profile_is_internally_consistent() {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    for shards in [1usize, 3] {
        let cfg = SimConfig::builder()
            .cores(4)
            .arch(SyncArch::LrscWait { slots: 2 })
            .shards(shards)
            .build()
            .expect("valid config");
        let mut machine = Machine::new(cfg, &program).expect("loads");
        machine.enable_profiler(ProfilerConfig { sample_every: 2 });
        machine.run().expect("runs");
        let profile = machine.profile().expect("profile present");

        // Laps are contiguous: phase times sum *exactly* to the sampled
        // step time, which the wall clock (covering the whole run loop,
        // sampled or not) must dominate.
        let phase_sum: u64 = profile.phases.iter().map(|s| s.ns).sum();
        assert_eq!(phase_sum, profile.sampled_ns, "laps are contiguous");
        assert!(
            profile.sampled_ns <= profile.wall_ns,
            "sampled {} <= wall {}",
            profile.sampled_ns,
            profile.wall_ns
        );
        assert_eq!(profile.sample_every, 2);
        assert!(profile.sampled_cycles >= profile.stepped_cycles / 2);
        assert_eq!(profile.shards, shards);
        assert_eq!(profile.workers.len(), shards - 1, "one counter per worker");

        // The Amdahl report derived from a real run is well-formed.
        let report = profile.amdahl();
        assert!((report.sequential_fraction + report.parallel_fraction - 1.0).abs() < 1e-9);
        assert!(report.render().contains("next Amdahl wall"));
    }
}

#[test]
fn sharded_profile_sees_worker_activity() {
    let program = Assembler::new().assemble(KERNEL).expect("assembles");
    let cfg = SimConfig::builder()
        .cores(4)
        .arch(SyncArch::LrscWait { slots: 2 })
        .shards(2)
        .build()
        .expect("valid config");
    let mut machine = Machine::new(cfg, &program).expect("loads");
    machine.enable_profiler(ProfilerConfig::default());
    machine.run().expect("runs");
    let profile = machine.profile().expect("profile present");
    assert_eq!(profile.workers.len(), 1);
    let worker = &profile.workers[0];
    assert_eq!(worker.shard, 1, "workers are shards 1..N");
    assert!(
        worker.jobs > 0,
        "the worker executed parallel phase jobs while profiled"
    );
    assert!(worker.busy_ns > 0, "executed jobs accumulate busy time");
}
