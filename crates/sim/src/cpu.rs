//! In-order single-issue core model (Snitch-like).
//!
//! The core executes all non-memory instructions internally in one cycle
//! (with configurable penalties for taken branches and division) and hands
//! memory operations to the engine as [`MemIntent`]s. While a blocking
//! memory operation is outstanding the core is *asleep*: it issues nothing
//! and consumes no network bandwidth — the property the LRSCwait extension
//! exploits.

use std::sync::{Arc, OnceLock};

use lrscwait_isa::{AluOp, AmoOp, Csr, CsrOp, Instr, MemWidth, Reg};
use lrscwait_trace::OpKind;

use crate::config::CoreTiming;
use crate::stats::CoreStats;
use crate::translate::Translation;

/// The trace [`OpKind`] a blocking atomic parks a core under — the
/// "cause" attached to the simulator's park/wake trace events and the
/// label Perfetto sleep spans carry.
#[must_use]
pub fn amo_op_kind(op: AmoOp) -> OpKind {
    match op {
        AmoOp::Lr => OpKind::Lr,
        AmoOp::Sc => OpKind::Sc,
        AmoOp::LrWait => OpKind::LrWait,
        AmoOp::ScWait => OpKind::ScWait,
        AmoOp::MWait => OpKind::MWait,
        _ => OpKind::Amo,
    }
}

/// A decoded program image shared by all cores — and, behind an
/// [`std::sync::Arc`], by all machines of a sweep: decoding (and the
/// text/raw/source-line buffers) happens once per distinct program, not
/// once per [`crate::Machine`].
#[derive(Debug)]
pub struct DecodedProgram {
    /// ROM base address.
    pub base: u32,
    /// Decoded instructions.
    pub instrs: Vec<Instr>,
    /// Raw words (for loads from the ROM region).
    pub raw: Vec<u32>,
    /// 1-based source line per word (diagnostics).
    pub source_lines: Vec<u32>,
    /// Entry point every core starts at.
    pub entry: u32,
    /// Base address of the initialized data image.
    pub data_base: u32,
    /// Initialized data image (byte-addressed, little-endian words).
    pub data: Vec<u8>,
    /// Base address of the zero-initialized segment.
    pub bss_base: u32,
    /// Size in bytes of the zero-initialized segment.
    pub bss_size: u32,
    /// Lazily-built superblock translation for `ExecMode::Translated`
    /// (see [`Translation`]). Built at most once per program image and
    /// shared by every machine (and every snapshot restore) holding this
    /// `DecodedProgram` — sweeps that share the image behind an `Arc`
    /// translate once.
    translation: OnceLock<Arc<Translation>>,
}

impl Clone for DecodedProgram {
    fn clone(&self) -> DecodedProgram {
        DecodedProgram {
            base: self.base,
            instrs: self.instrs.clone(),
            raw: self.raw.clone(),
            source_lines: self.source_lines.clone(),
            entry: self.entry,
            data_base: self.data_base,
            data: self.data.clone(),
            bss_base: self.bss_base,
            bss_size: self.bss_size,
            // A clone is the same program image, so the translation (if
            // already built) stays valid and is shared, not rebuilt.
            translation: self
                .translation
                .get()
                .map_or_else(OnceLock::new, |t| OnceLock::from(Arc::clone(t))),
        }
    }
}

impl DecodedProgram {
    /// Decodes an assembled [`lrscwait_asm::Program`] into a shareable
    /// image.
    ///
    /// # Errors
    ///
    /// Returns the index of the first text word that does not decode.
    pub fn from_program(program: &lrscwait_asm::Program) -> Result<DecodedProgram, usize> {
        let mut instrs = Vec::with_capacity(program.text.len());
        for (index, &word) in program.text.iter().enumerate() {
            match lrscwait_isa::decode(word) {
                Ok(i) => instrs.push(i),
                Err(_) => return Err(index),
            }
        }
        Ok(DecodedProgram {
            base: program.text_base,
            instrs,
            raw: program.text.clone(),
            source_lines: program.source_lines.clone(),
            entry: program.entry,
            data_base: program.data_base,
            data: program.data.clone(),
            bss_base: program.bss_base,
            bss_size: program.bss_size,
            translation: OnceLock::new(),
        })
    }

    /// Index of `pc` within the program, if in range and aligned.
    #[must_use]
    pub fn index_of(&self, pc: u32) -> Option<usize> {
        if pc < self.base || pc % 4 != 0 {
            return None;
        }
        let idx = ((pc - self.base) / 4) as usize;
        (idx < self.instrs.len()).then_some(idx)
    }

    /// The superblock translation of this image, built on first use and
    /// cached for the lifetime of the `DecodedProgram` (machines,
    /// restores, and sweep workers all share the same `Arc`).
    #[must_use]
    pub fn translation(&self) -> &Arc<Translation> {
        self.translation
            .get_or_init(|| Arc::new(Translation::new(self)))
    }
}

/// Scheduling state of one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreState {
    /// Fetching and executing.
    Running,
    /// Blocked on a memory response (sleeping, no traffic).
    WaitingMem,
    /// Parked at the hardware barrier.
    Barrier,
    /// Finished (`ecall` or MMIO EXIT).
    Halted,
}

/// What kind of response the core is waiting for, and how to write it back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingKind {
    /// Plain load; extract `width` at `addr`'s byte lane, sign-extend if set.
    Load { width: MemWidth, signed: bool },
    /// Value-returning atomic (`amo*`, `lr`, `lrwait`, `mwait`).
    Value,
    /// Success-flag atomic (`sc`, `scwait`): rd = 0 on success, 1 on failure.
    Flag,
}

/// An in-flight blocking memory operation.
#[derive(Clone, Copy, Debug)]
pub struct PendingMem {
    /// Destination register.
    pub rd: Reg,
    /// Unaligned byte address of the access.
    pub addr: u32,
    /// Writeback discipline.
    pub kind: PendingKind,
}

/// A memory operation the engine must carry out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemIntent {
    /// Load `width` bytes at `addr` into `rd`.
    Load {
        addr: u32,
        rd: Reg,
        width: MemWidth,
        signed: bool,
    },
    /// Store `width` bytes of `value` at `addr`.
    Store {
        addr: u32,
        value: u32,
        width: MemWidth,
    },
    /// Atomic operation at word-aligned `addr`. `operand` is rs2's value.
    Atomic {
        addr: u32,
        rd: Reg,
        op: AmoOp,
        operand: u32,
    },
    /// Drain the store buffer.
    Fence,
}

/// Outcome of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Instruction fully retired inside the core.
    Done,
    /// Memory operation; `pc` was *not* advanced — the engine advances it
    /// once the operation is accepted.
    Mem(MemIntent),
    /// `ecall`: halt this core.
    Halt,
}

/// Execution error (turned into a simulator error with context).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Fetch outside the program image.
    IllegalPc(u32),
    /// `ebreak` executed.
    Breakpoint(u32),
    /// Misaligned load/store/atomic.
    Misaligned { pc: u32, addr: u32 },
}

/// Architectural and scheduling state of one core.
#[derive(Clone, Debug)]
pub struct Core {
    /// Hart id.
    pub id: u32,
    /// Register file (x0 kept zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Scheduling state.
    pub state: CoreState,
    /// Earliest cycle the next instruction may issue.
    pub ready_at: u64,
    /// Last cycle the translated fast path has already charged into
    /// `stats` for this core (superblocks run ahead of the machine
    /// clock; per-cycle visits before this point must not double-count
    /// stalls, and `fast_forward` must not re-credit them). Always `0`
    /// outside `ExecMode::Translated`; transient simulation state, never
    /// serialized — snapshots reset it on restore.
    pub charged_until: u64,
    /// Cycle at which the core last entered `WaitingMem` or `Barrier`
    /// (event-driven lazy accounting: the sleep/barrier cycle total is
    /// settled as a single delta on wake instead of one increment per
    /// parked cycle).
    pub parked_at: u64,
    /// In-flight blocking operation (when `state == WaitingMem`).
    pub pending: Option<PendingMem>,
    /// Posted stores awaiting acknowledgement.
    pub outstanding_stores: u32,
    /// Per-core statistics.
    pub stats: CoreStats,
}

impl Core {
    /// Creates a core with cleared registers starting at `entry`.
    #[must_use]
    pub fn new(id: u32, entry: u32) -> Core {
        Core {
            id,
            regs: [0; 32],
            pc: entry,
            state: CoreState::Running,
            ready_at: 0,
            charged_until: 0,
            parked_at: 0,
            pending: None,
            outstanding_stores: 0,
            stats: CoreStats::default(),
        }
    }

    /// Reads a register (x0 reads zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Executes one instruction at `pc`.
    ///
    /// Non-memory instructions retire here (advancing `pc` and applying
    /// branch/divide penalties to `ready_at`); memory operations are
    /// returned as intents with `pc` left pointing at the instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on illegal fetch, `ebreak`, or misalignment.
    pub fn execute(
        &mut self,
        program: &DecodedProgram,
        now: u64,
        timing: &CoreTiming,
    ) -> Result<Action, ExecError> {
        let idx = program
            .index_of(self.pc)
            .ok_or(ExecError::IllegalPc(self.pc))?;
        let instr = program.instrs[idx];
        self.stats.instret += 1;
        self.ready_at = now + 1;
        match instr {
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, imm);
                self.pc += 4;
                Ok(Action::Done)
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(rd, self.pc.wrapping_add(imm));
                self.pc += 4;
                Ok(Action::Done)
            }
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, self.pc + 4);
                self.pc = self.pc.wrapping_add(offset as u32);
                self.ready_at = now + 1 + u64::from(timing.branch_penalty);
                Ok(Action::Done)
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, self.pc + 4);
                self.pc = target;
                self.ready_at = now + 1 + u64::from(timing.branch_penalty);
                Ok(Action::Done)
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.taken(self.reg(rs1), self.reg(rs2)) {
                    self.pc = self.pc.wrapping_add(offset as u32);
                    self.ready_at = now + 1 + u64::from(timing.branch_penalty);
                } else {
                    self.pc += 4;
                }
                Ok(Action::Done)
            }
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                check_alignment(self.pc, addr, width)?;
                Ok(Action::Mem(MemIntent::Load {
                    addr,
                    rd,
                    width,
                    signed,
                }))
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                check_alignment(self.pc, addr, width)?;
                Ok(Action::Mem(MemIntent::Store {
                    addr,
                    value: self.reg(rs2),
                    width,
                }))
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as u32));
                self.pc += 4;
                Ok(Action::Done)
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
                if matches!(op, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu) {
                    self.ready_at = now + u64::from(timing.div_latency.max(1));
                }
                self.pc += 4;
                Ok(Action::Done)
            }
            Instr::Fence => Ok(Action::Mem(MemIntent::Fence)),
            Instr::Ecall => Ok(Action::Halt),
            Instr::Ebreak => Err(ExecError::Breakpoint(self.pc)),
            Instr::Csr {
                op,
                rd,
                rs1,
                csr,
                imm_form,
            } => {
                let old = self.read_csr(csr, now);
                let operand = if imm_form {
                    u32::from(rs1.index())
                } else {
                    self.reg(rs1)
                };
                // Writable CSRs are not modelled; the value computation is
                // performed for architectural completeness.
                let _ = match op {
                    CsrOp::ReadWrite => operand,
                    CsrOp::ReadSet => old | operand,
                    CsrOp::ReadClear => old & !operand,
                };
                self.set_reg(rd, old);
                self.pc += 4;
                Ok(Action::Done)
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                let addr = self.reg(rs1);
                check_alignment(self.pc, addr, MemWidth::Word)?;
                Ok(Action::Mem(MemIntent::Atomic {
                    addr,
                    rd,
                    op,
                    operand: self.reg(rs2),
                }))
            }
        }
    }

    fn read_csr(&self, csr: u16, now: u64) -> u32 {
        match Csr::from_address(csr) {
            Some(Csr::MHartId) => self.id,
            Some(Csr::Cycle) => now as u32,
            Some(Csr::CycleH) => (now >> 32) as u32,
            Some(Csr::InstRet) => self.stats.instret as u32,
            Some(Csr::InstRetH) => (self.stats.instret >> 32) as u32,
            None => 0,
        }
    }

    /// Completes an in-flight load/atomic with the raw word `value`.
    ///
    /// # Panics
    ///
    /// Panics when no operation is pending (engine bug).
    pub fn complete(&mut self, value: u32, now: u64) {
        let pending = self.pending.take().expect("completion without pending op");
        let result = match pending.kind {
            PendingKind::Load { width, signed } => extract(value, pending.addr, width, signed),
            PendingKind::Value => value,
            PendingKind::Flag => value, // engine passes 0/1 directly
        };
        self.set_reg(pending.rd, result);
        self.state = CoreState::Running;
        self.ready_at = now;
    }
}

/// Extracts a (possibly sub-word) load result from a full memory word.
#[must_use]
pub fn extract(word: u32, addr: u32, width: MemWidth, signed: bool) -> u32 {
    let shift = 8 * (addr & 3);
    match (width, signed) {
        (MemWidth::Word, _) => word,
        (MemWidth::Half, false) => (word >> shift) & 0xFFFF,
        (MemWidth::Half, true) => ((word >> shift) & 0xFFFF) as u16 as i16 as i32 as u32,
        (MemWidth::Byte, false) => (word >> shift) & 0xFF,
        (MemWidth::Byte, true) => ((word >> shift) & 0xFF) as u8 as i8 as i32 as u32,
    }
}

/// Builds the (aligned address, shifted value, byte mask) triple of a store.
#[must_use]
pub fn store_lanes(addr: u32, value: u32, width: MemWidth) -> (u32, u32, u32) {
    let shift = 8 * (addr & 3);
    match width {
        MemWidth::Word => (addr, value, !0),
        MemWidth::Half => (addr & !3, (value & 0xFFFF) << shift, 0xFFFFu32 << shift),
        MemWidth::Byte => (addr & !3, (value & 0xFF) << shift, 0xFFu32 << shift),
    }
}

fn check_alignment(pc: u32, addr: u32, width: MemWidth) -> Result<(), ExecError> {
    let ok = match width {
        MemWidth::Byte => true,
        MemWidth::Half => addr % 2 == 0,
        MemWidth::Word => addr % 4 == 0,
    };
    if ok {
        Ok(())
    } else {
        Err(ExecError::Misaligned { pc, addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrscwait_asm::Assembler;

    fn program(src: &str) -> DecodedProgram {
        let p = Assembler::new()
            .assemble(src)
            .expect("test program assembles");
        DecodedProgram::from_program(&p).expect("test program decodes")
    }

    fn run_steps(core: &mut Core, prog: &DecodedProgram, steps: usize) {
        let timing = CoreTiming::default();
        for step in 0..steps {
            match core.execute(prog, step as u64, &timing).unwrap() {
                Action::Done => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn arithmetic_sequence() {
        let prog = program("li a0, 5\nli a1, 7\nadd a2, a0, a1\nsub a3, a0, a1\n");
        let mut core = Core::new(0, prog.base);
        run_steps(&mut core, &prog, 4);
        assert_eq!(core.reg(Reg::A2), 12);
        assert_eq!(core.reg(Reg::A3), (-2i32) as u32);
        assert_eq!(core.stats.instret, 4);
    }

    #[test]
    fn x0_stays_zero() {
        let prog = program("li zero, 5\naddi zero, zero, 3\n");
        let mut core = Core::new(0, prog.base);
        run_steps(&mut core, &prog, 2);
        assert_eq!(core.reg(Reg::ZERO), 0);
    }

    #[test]
    fn branch_taken_applies_penalty() {
        let prog = program("li t0, 1\nbnez t0, target\nli a0, 111\ntarget: li a0, 222\n");
        let mut core = Core::new(0, prog.base);
        let timing = CoreTiming::default();
        core.execute(&prog, 0, &timing).unwrap(); // li
        core.execute(&prog, 1, &timing).unwrap(); // bnez taken
        assert_eq!(core.ready_at, 1 + 1 + u64::from(timing.branch_penalty));
        core.execute(&prog, core.ready_at, &timing).unwrap();
        assert_eq!(core.reg(Reg::A0), 222, "branch skipped the first li");
    }

    #[test]
    fn jal_links_and_jumps() {
        let prog = program("_start: jal ra, fwd\nli a0, 1\nfwd: li a0, 2\n");
        let mut core = Core::new(0, prog.base);
        let timing = CoreTiming::default();
        core.execute(&prog, 0, &timing).unwrap();
        assert_eq!(core.reg(Reg::RA), prog.base + 4);
        core.execute(&prog, 3, &timing).unwrap();
        assert_eq!(core.reg(Reg::A0), 2);
    }

    #[test]
    fn division_takes_longer() {
        let prog = program("li a0, 100\nli a1, 7\ndiv a2, a0, a1\nrem a3, a0, a1\n");
        let mut core = Core::new(0, prog.base);
        let timing = CoreTiming::default();
        core.execute(&prog, 0, &timing).unwrap();
        core.execute(&prog, 1, &timing).unwrap();
        core.execute(&prog, 2, &timing).unwrap();
        assert_eq!(core.reg(Reg::A2), 14);
        assert_eq!(core.ready_at, 2 + u64::from(timing.div_latency));
        core.execute(&prog, core.ready_at, &timing).unwrap();
        assert_eq!(core.reg(Reg::A3), 2);
    }

    #[test]
    fn memory_intents_do_not_advance_pc() {
        let prog = program("lw a0, 8(a1)\n");
        let mut core = Core::new(0, prog.base);
        core.set_reg(Reg::A1, 0x100);
        let timing = CoreTiming::default();
        let action = core.execute(&prog, 0, &timing).unwrap();
        assert_eq!(
            action,
            Action::Mem(MemIntent::Load {
                addr: 0x108,
                rd: Reg::A0,
                width: MemWidth::Word,
                signed: true
            })
        );
        assert_eq!(core.pc, prog.base, "pc stays until the engine accepts");
    }

    #[test]
    fn csr_reads() {
        let prog = program("csrr a0, mhartid\nrdcycle a1\n");
        let mut core = Core::new(9, prog.base);
        let timing = CoreTiming::default();
        core.execute(&prog, 5, &timing).unwrap();
        assert_eq!(core.reg(Reg::A0), 9);
        core.execute(&prog, 123, &timing).unwrap();
        assert_eq!(core.reg(Reg::A1), 123);
    }

    #[test]
    fn halting_and_breakpoints() {
        let prog = program("ecall\nebreak\n");
        let mut core = Core::new(0, prog.base);
        let timing = CoreTiming::default();
        assert_eq!(core.execute(&prog, 0, &timing), Ok(Action::Halt));
        core.pc += 4;
        assert_eq!(
            core.execute(&prog, 1, &timing),
            Err(ExecError::Breakpoint(prog.base + 4))
        );
    }

    #[test]
    fn misaligned_detected() {
        let prog = program("lw a0, 2(zero)\n");
        let mut core = Core::new(0, prog.base);
        let timing = CoreTiming::default();
        assert!(matches!(
            core.execute(&prog, 0, &timing),
            Err(ExecError::Misaligned { .. })
        ));
    }

    #[test]
    fn extract_subwords() {
        let word = 0x8476_FF80;
        assert_eq!(extract(word, 0, MemWidth::Byte, false), 0x80);
        assert_eq!(extract(word, 0, MemWidth::Byte, true), 0xFFFF_FF80);
        assert_eq!(extract(word, 1, MemWidth::Byte, false), 0xFF);
        assert_eq!(extract(word, 3, MemWidth::Byte, true), 0xFFFF_FF84);
        assert_eq!(extract(word, 0, MemWidth::Half, false), 0xFF80);
        assert_eq!(extract(word, 0, MemWidth::Half, true), 0xFFFF_FF80);
        assert_eq!(extract(word, 2, MemWidth::Half, false), 0x8476);
        assert_eq!(extract(word, 0, MemWidth::Word, true), word);
    }

    #[test]
    fn store_lane_building() {
        assert_eq!(
            store_lanes(0x100, 0xAABBCCDD, MemWidth::Word),
            (0x100, 0xAABBCCDD, !0)
        );
        let (a, v, m) = store_lanes(0x101, 0xEE, MemWidth::Byte);
        assert_eq!((a, v, m), (0x100, 0xEE00, 0xFF00));
        let (a, v, m) = store_lanes(0x102, 0x1234, MemWidth::Half);
        assert_eq!((a, v, m), (0x100, 0x1234_0000, 0xFFFF_0000));
    }
}
