//! Superblock translation and execution — the `ExecMode::Translated`
//! fast path.
//!
//! A [`Translation`] lowers every instruction of a
//! [`DecodedProgram`](crate::cpu::DecodedProgram) into a
//! [`MicroOp`] (see the `lrscwait_isa::uop` module docs for the
//! boundary rules). Micro-ops are 1:1 with instructions, so execution
//! can enter at any non-boundary index; [`run_block`] then *threads*
//! through the image — following jumps and taken branches between
//! internal micro-ops in one tight loop — until it reaches a boundary,
//! leaves the text image, or runs past the machine's cycle horizon.
//!
//! # Determinism contract
//!
//! `run_block` charges exactly the interpreter's per-instruction cycle
//! accounting: one `active_cycles` and one `instret` per issued
//! instruction, the same `ready_at` latencies (`+1` base, the divide
//! latency for `div`/`rem`, the branch penalty on every jump and taken
//! branch), and one `stall_cycles` per cycle the pipeline waits between
//! in-block issues. It runs *ahead* of the machine clock; the cycles it
//! has already accounted are recorded in `Core::charged_until` so the
//! per-cycle scheduler and `fast_forward` never double-charge them.
//! Internal micro-ops touch no memory and emit no trace events — in
//! every mode those instructions are trace-silent — so statistics,
//! trace streams, and snapshots stay bit-identical with the
//! interpreter-only modes.

use lrscwait_isa::{AluOp, JumpTarget, MicroOp};

use crate::config::CoreTiming;
use crate::cpu::{Core, DecodedProgram};

/// A fully lowered program image: one [`MicroOp`] per instruction.
///
/// Built once per [`DecodedProgram`](crate::cpu::DecodedProgram) (see
/// `DecodedProgram::translation`) and shared behind an `Arc` by every
/// machine, sweep worker, and snapshot restore using that image.
#[derive(Debug)]
pub struct Translation {
    /// Text base address (micro-op `i` covers `base + 4*i`).
    base: u32,
    /// Lowered micro-ops, index-aligned with `DecodedProgram::instrs`.
    uops: Vec<MicroOp>,
}

impl Translation {
    /// Lowers a decoded program into its micro-op image.
    #[must_use]
    pub fn new(program: &DecodedProgram) -> Translation {
        let base = program.base;
        let len = program.instrs.len() as u32;
        let uops = program
            .instrs
            .iter()
            .enumerate()
            .map(|(i, instr)| MicroOp::lower(instr, base + 4 * i as u32, base, len))
            .collect();
        Translation { base, uops }
    }

    /// Number of micro-ops (== instructions) in the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the image is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Superblock entry index for `pc`: `Some` only when `pc` lands on
    /// an in-text, aligned, *non-boundary* micro-op. Boundary
    /// instructions and out-of-text pcs return `None` — the caller runs
    /// one interpreter step instead, which performs the architectural
    /// action (or raises the fault) at the correct cycle.
    #[must_use]
    pub fn entry(&self, pc: u32) -> Option<usize> {
        let rel = pc.wrapping_sub(self.base);
        if rel % 4 != 0 {
            return None;
        }
        let idx = (rel / 4) as usize;
        (idx < self.uops.len() && !self.uops[idx].is_boundary()).then_some(idx)
    }
}

/// Where execution continues after one micro-op.
enum Cont {
    /// Fall through to the next index.
    Next,
    /// Pre-resolved control-flow target.
    Target(JumpTarget),
    /// Runtime-computed pc (`jalr`), resolved against the image here.
    Pc(u32),
}

/// Executes one superblock: issues micro-ops starting at `entry` until
/// the next instruction is a boundary, control flow leaves the text
/// image, or the next issue cycle would pass `horizon`.
///
/// Entry invariants (checked by the caller): `now >= core.ready_at`, the
/// request outbox has room, and `uops[entry]` is not a boundary.
/// `now <= horizon` always holds (the horizon is clamped up to `now`).
///
/// On exit `core.pc` points at the next instruction to execute,
/// `core.ready_at` at its earliest issue cycle, and `core.charged_until`
/// at the last cycle already accounted into `core.stats` — later
/// per-cycle visits and `fast_forward` must only charge cycles beyond
/// it.
pub(crate) fn run_block(
    core: &mut Core,
    trans: &Translation,
    entry: usize,
    now: u64,
    horizon: u64,
    timing: &CoreTiming,
) {
    let base = trans.base;
    let len = trans.uops.len() as u32;
    let mut idx = entry;
    let mut t = now;
    let mut instret = 0u64;
    let mut active = 0u64;
    let mut stall = 0u64;
    let (exit_pc, ready) = loop {
        debug_assert!(idx < trans.uops.len());
        // Issue `uops[idx]` at cycle `t`: same accounting as one
        // interpreter step (instret in `Core::execute`, active in the
        // scheduler's pre-step charge).
        instret += 1;
        active += 1;
        let mut ready = t + 1;
        let cont = match trans.uops[idx] {
            MicroOp::Const { rd, imm } => {
                core.set_reg(rd, imm);
                Cont::Next
            }
            MicroOp::AluImm { op, rd, rs1, imm } => {
                core.set_reg(rd, op.eval(core.reg(rs1), imm));
                Cont::Next
            }
            MicroOp::AluReg { op, rd, rs1, rs2 } => {
                core.set_reg(rd, op.eval(core.reg(rs1), core.reg(rs2)));
                if matches!(op, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu) {
                    ready = t + u64::from(timing.div_latency.max(1));
                }
                Cont::Next
            }
            MicroOp::Jump { rd, link, target } => {
                core.set_reg(rd, link);
                ready = t + 1 + u64::from(timing.branch_penalty);
                Cont::Target(target)
            }
            MicroOp::JumpReg {
                rd,
                rs1,
                offset,
                link,
            } => {
                // rs1 is read before the link write (`jalr ra, 0(ra)`).
                let target = core.reg(rs1).wrapping_add(offset as u32) & !1;
                core.set_reg(rd, link);
                ready = t + 1 + u64::from(timing.branch_penalty);
                Cont::Pc(target)
            }
            MicroOp::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                if op.taken(core.reg(rs1), core.reg(rs2)) {
                    ready = t + 1 + u64::from(timing.branch_penalty);
                    Cont::Target(target)
                } else {
                    Cont::Next
                }
            }
            // The caller never enters at a boundary and the loop exits
            // *before* stepping onto one.
            MicroOp::Boundary => unreachable!("superblock entered at a boundary micro-op"),
        };
        let next = match cont {
            Cont::Next => {
                let next = idx as u32 + 1;
                if next == len {
                    // Fell off the end of the text image: the fetch at
                    // `base + 4*len` faults — hand it to the interpreter.
                    break (base.wrapping_add(4 * len), ready);
                }
                next
            }
            Cont::Target(JumpTarget::Index(i)) => i,
            Cont::Target(JumpTarget::OutOfText(pc)) => break (pc, ready),
            Cont::Pc(pc) => {
                let rel = pc.wrapping_sub(base);
                if rel % 4 == 0 && rel / 4 < len {
                    rel / 4
                } else {
                    break (pc, ready);
                }
            }
        };
        let next_pc = base + 4 * next;
        if trans.uops[next as usize].is_boundary() || ready > horizon {
            break (next_pc, ready);
        }
        // In-block pipeline gap (branch penalty, divide latency): the
        // per-cycle schedulers charge one stall per waited cycle.
        stall += ready - t - 1;
        t = ready;
        idx = next as usize;
    };
    core.pc = exit_pc;
    core.ready_at = ready;
    core.charged_until = t;
    core.stats.instret += instret;
    core.stats.active_cycles += active;
    core.stats.stall_cycles += stall;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrscwait_asm::Assembler;

    fn decoded(src: &str) -> DecodedProgram {
        let p = Assembler::new()
            .assemble(src)
            .expect("test program assembles");
        DecodedProgram::from_program(&p).expect("test program decodes")
    }

    #[test]
    fn straight_line_block_runs_to_boundary() {
        let prog = decoded("li a0, 5\nli a1, 7\nadd a2, a0, a1\necall\n");
        let trans = Translation::new(&prog);
        assert_eq!(trans.len(), 4);
        assert_eq!(trans.entry(prog.base), Some(0));
        assert_eq!(trans.entry(prog.base + 12), None, "ecall is a boundary");
        assert_eq!(trans.entry(prog.base + 2), None, "misaligned");

        let mut core = Core::new(0, prog.base);
        run_block(&mut core, &trans, 0, 0, u64::MAX, &CoreTiming::default());
        assert_eq!(core.reg(lrscwait_isa::Reg::A2), 12);
        assert_eq!(core.pc, prog.base + 12, "stopped at the ecall");
        assert_eq!(core.ready_at, 3);
        assert_eq!(core.charged_until, 2);
        assert_eq!(core.stats.instret, 3);
        assert_eq!(core.stats.active_cycles, 3);
        assert_eq!(core.stats.stall_cycles, 0);
    }

    #[test]
    fn taken_branch_charges_penalty_as_in_block_stall() {
        // Loop: 4 iterations of (addi; bnez), then falls through to ecall.
        let prog = decoded("li t0, 4\nloop: addi t0, t0, -1\nbnez t0, loop\necall\n");
        let trans = Translation::new(&prog);
        let timing = CoreTiming::default();
        let mut core = Core::new(0, prog.base);
        run_block(&mut core, &trans, 0, 0, u64::MAX, &timing);
        assert_eq!(core.reg(lrscwait_isa::Reg::T0), 0);
        assert_eq!(core.pc, prog.base + 12);
        // 9 instructions issue (li + 4×(addi, bnez)); each of the 3
        // taken branches inserts `branch_penalty` stall cycles.
        assert_eq!(core.stats.instret, 9);
        assert_eq!(core.stats.active_cycles, 9);
        assert_eq!(
            core.stats.stall_cycles,
            3 * u64::from(timing.branch_penalty)
        );
    }

    #[test]
    fn horizon_splits_block_without_losing_cycles() {
        let prog = decoded("li a0, 1\nli a1, 2\nli a2, 3\nli a3, 4\necall\n");
        let trans = Translation::new(&prog);
        let timing = CoreTiming::default();
        fn run(core: &mut Core, trans: &Translation, now: u64, horizon: u64, timing: &CoreTiming) {
            let entry = trans.entry(core.pc).expect("re-enterable");
            run_block(core, trans, entry, now, horizon, timing);
        }
        // Horizon 1 → issues at cycles 0 and 1, then must stop.
        let mut split = Core::new(0, prog.base);
        run(&mut split, &trans, 0, 1, &timing);
        assert_eq!(split.stats.active_cycles, 2);
        assert_eq!(split.pc, prog.base + 8, "re-entry point is exact");
        run(&mut split, &trans, 2, u64::MAX, &timing);

        let mut whole = Core::new(0, prog.base);
        run(&mut whole, &trans, 0, u64::MAX, &timing);
        assert_eq!(split.pc, whole.pc);
        assert_eq!(split.ready_at, whole.ready_at);
        assert_eq!(split.stats.instret, whole.stats.instret);
        assert_eq!(split.stats.active_cycles, whole.stats.active_cycles);
        assert_eq!(split.stats.stall_cycles, whole.stats.stall_cycles);
        assert_eq!(split.regs, whole.regs);
    }

    #[test]
    fn divide_latency_matches_interpreter() {
        let prog = decoded("li a0, 100\nli a1, 7\ndiv a2, a0, a1\nrem a3, a0, a1\necall\n");
        let trans = Translation::new(&prog);
        let timing = CoreTiming::default();
        let mut core = Core::new(0, prog.base);
        run_block(&mut core, &trans, 0, 0, u64::MAX, &timing);
        assert_eq!(core.reg(lrscwait_isa::Reg::A2), 14);
        assert_eq!(core.reg(lrscwait_isa::Reg::A3), 2);
        // Issues at 0, 1, 2 (div → ready 2 + div_latency), then the rem
        // at that cycle (ready + div_latency again); exits at the ecall.
        // Only the div→rem gap is an *in-block* stall — the rem's own
        // latency trails the block and is charged per-visit by the
        // scheduler, exactly like the interpreter.
        assert_eq!(core.ready_at, 2 + 2 * u64::from(timing.div_latency));
        assert_eq!(core.charged_until, 2 + u64::from(timing.div_latency));
        assert_eq!(core.stats.active_cycles, 4);
        assert_eq!(core.stats.stall_cycles, u64::from(timing.div_latency) - 1);
    }

    #[test]
    fn jalr_out_of_text_exits_with_runtime_pc() {
        let prog = decoded("li t0, 0x9000\njalr ra, 0(t0)\necall\n");
        let trans = Translation::new(&prog);
        let mut core = Core::new(0, prog.base);
        run_block(&mut core, &trans, 0, 0, u64::MAX, &CoreTiming::default());
        assert_eq!(core.pc, 0x9000, "interpreter will raise IllegalPc here");
        // `li t0, 0x9000` expands to lui+addi, so the jalr sits at
        // base + 8 and links base + 12.
        assert_eq!(core.reg(lrscwait_isa::Reg::RA), prog.base + 12);
    }
}
