//! The manycore machine: cores + Qnodes + banks with synchronization
//! adapters, glued together by the two virtual networks.
//!
//! # Cycle order
//!
//! 1. Advance the request network; delivered requests are grouped by
//!    destination bank and serviced **in bank-id order** (and, within one
//!    bank, in delivery order) by the bank's [`SyncAdapter`]; responses
//!    land in the bank's outbox. This is the first parallel phase: with
//!    `shards > 1` each worker services a contiguous range of banks.
//! 2. Flush bank outboxes into the response network in **bank-id order**
//!    (FIFO per bank, so the (bank → core) ordering Colibri relies on
//!    holds).
//! 3. Advance the response network; deliveries pass through the core's
//!    [`Qnode`] (which may swallow `SuccessorUpdate`s or emit `WakeUp`s)
//!    and complete the core's in-flight operation.
//! 4. Step the cores by one instruction in **core-id order** — the second
//!    parallel phase (contiguous core ranges per shard). Barrier arrivals
//!    and halts are only *recorded* here; the barrier-release check runs
//!    once, single-threaded, after the walk, so its accounting never
//!    depends on visit order.
//! 5. Flush core outboxes into the request network (backpressure stalls
//!    the core), with the per-cycle rotated round-robin start.
//!
//! # Bank-sharded parallel execution
//!
//! [`SimConfig::shards`]` = n > 1` runs phases 1 and 4 on a persistent
//! pool of `n − 1` worker threads plus the caller (no per-cycle spawn; the
//! pool parks between phases). Sharding exploits state that is already
//! independent within a cycle: a bank adapter touches only its own words,
//! queue registers and outbox; a stepping core touches only its own
//! registers, Qnode and request outbox. Phases are separated by barriers,
//! and everything ordering-sensitive — network advancement, outbox
//! flushing, response delivery, barrier release, statistics aggregation —
//! stays on the coordinating thread.
//!
//! **Determinism contract:** results are bit-identical for *any* shard
//! count (and all three [`ExecMode`]s — the differential and tracing
//! suites enforce `shards=1` ≡ `shards=N` ≡ `Reference` ≡ `Translated`
//! on summaries, statistics, CSV bytes and trace streams). Three rules
//! make this hold:
//!
//! * every cross-shard merge (dirty banks, dirty cores, runnable set,
//!   debug prints, trace events) is performed in bank-id / core-id order —
//!   shards own contiguous, ordered ranges and accumulate in ascending
//!   order, so concatenation in shard order *is* the global order;
//! * the barrier release (the one genuinely order-sensitive accounting
//!   site) is deferred to a single-threaded sub-phase after stepping and
//!   charges every released core the same `now − parked_at` delta,
//!   independent of visit order;
//! * shard-local scratch is reused each cycle, so sharded steady-state
//!   cycles stay allocation-free (enforced by the counting-allocator
//!   suite).
//!
//! # Event-driven scheduling
//!
//! The paper's whole point is that LRSCwait cores *sleep* instead of
//! polling, so in the interesting regimes almost every core is parked in a
//! wait queue or at the barrier. The default execution mode
//! ([`ExecMode::EventDriven`]) makes the simulator's cost track *events*
//! instead of `cores × cycles`:
//!
//! * **Runnable set.** Phase 4 walks an always-sorted list of the cores in
//!   [`CoreState::Running`]. Cores leave it when they halt, park at the
//!   barrier, or block on memory, and re-enter on response delivery or
//!   barrier release — a parked core costs zero work per cycle.
//! * **Lazy parked accounting.** Sleep/barrier cycle counters are settled
//!   as one `now − parked_at` delta on wake (and flushed on
//!   [`Machine::stats`]) instead of one increment per parked cycle.
//! * **Cycle fast-forwarding.** Between cycles, [`Machine::run`] asks both
//!   networks for their [`next_ready_at`](Network::next_ready_at) and the
//!   runnable cores for their earliest `ready_at`; when the next event is
//!   more than one cycle away (and no outbox holds backpressured traffic),
//!   the cycle counter jumps straight to it. Long all-asleep phases — the
//!   common case under LRSCwait — cost O(events), and an all-parked
//!   deadlock jumps directly to the watchdog.
//! * **Allocation-free hot loops.** Every per-cycle scratch buffer
//!   (message buffers, dirty-bank/dirty-core lists, the runnable set and
//!   its merge scratch, the networks' scan sets, the per-shard scratches)
//!   is reused; steady-state cycles perform zero heap allocations.
//!
//! # Translated fast path
//!
//! [`ExecMode::Translated`] keeps the event-driven scheduling and swaps
//! the per-instruction interpreter dispatch for superblock execution:
//! the program image is pre-lowered into micro-ops (once per
//! [`DecodedProgram`], shared across machines and restores), and a
//! runnable core executes a whole straight-line-plus-branches run in one
//! tight loop (`crate::translate::run_block`), re-entering the
//! interpreter at every load/store/AMO/CSR/fence/ecall boundary — i.e.
//! exactly where the NoC, the adapters, or the timing model must observe
//! the core. Superblocks run *ahead* of the machine clock up to the run
//! loop's horizon (watchdog/target, so both stay cycle-exact); the
//! cycles already charged are tracked in `Core::charged_until` so
//! per-cycle visits and `fast_forward` never double-count. Internal
//! micro-ops are trace-silent in every mode, so trace streams are
//! unchanged.
//!
//! # Equivalence guarantee
//!
//! Event-driven and translated execution are *optimizations, not model
//! changes*: cycle counts, every statistic, and therefore every
//! benchmark CSV byte are identical to the naive reference stepper
//! ([`ExecMode::Reference`]), which visits all cores every cycle with
//! eager per-cycle accounting. The differential test suite
//! (`crates/sim/tests/differential.rs` and the workspace-level
//! `tests/differential.rs`) runs all three modes — and multiple shard
//! counts — across the kernel × architecture matrix and asserts
//! bit-identical [`RunSummary`]/[`SimStats`] and byte-identical sweep
//! CSVs. Barrier-release accounting is visit-order-free by construction:
//! the release happens in a sequential sub-phase after stepping, charging
//! each released core `now − parked_at` barrier cycles (which is exactly
//! what the reference's eager one-per-visit counting adds up to).
//!
//! # Tracing
//!
//! [`Machine::set_tracer`] attaches a `lrscwait-trace` sink that observes
//! the run as structured events: core park/wake with cause, barrier
//! arrivals and releases, measured-region markers, request issue, the
//! bank adapters' synchronization events and the networks' transport
//! events. Tracing is an *observer, never a steering input*: results are
//! bit-identical with and without a sink, and the event stream itself is
//! identical across execution modes *and shard counts* (enforced by
//! `crates/sim/tests/tracing.rs`) — parallel phases buffer their events
//! per shard and the coordinator drains the buffers in shard (= id)
//! order. With no sink attached — the default — the phase bodies are
//! monomorphized over a no-op trace context, so untraced runs pay no
//! per-step tracing branch at all.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use lrscwait_asm::Program;
use lrscwait_chaos::Chaos;
use lrscwait_core::{
    AdapterStats, MemRequest, MemResponse, Qnode, StateError, StateReader, StateWriter, SyncAdapter,
};
use lrscwait_isa::{MemWidth, Reg};
use lrscwait_noc::{MempoolTopology, Network, NetworkStats, Route};
use lrscwait_telemetry::{Phase, PhaseProfile, Profiler, ProfilerConfig};

use lrscwait_trace::{NetDir, OpKind, TraceEvent, TraceSink, Tracer, WakeCause};

use crate::config::{ConfigError, ExecMode, SimConfig, ROM_BASE};
use crate::cpu::{Core, CoreState, DecodedProgram, PendingKind, PendingMem};
use crate::phases::{self, CorePhase, ReqMsg, RespMsg, ShardScratch};
use crate::shard::{Job, WorkerPool};
use crate::stats::{ExitReason, RunSummary, SimStats};
use crate::translate::Translation;

/// Fatal simulation error (software bug in a kernel or harness misuse).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Core fetched outside the program image.
    IllegalPc {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Misaligned access.
    Misaligned {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// Accessed address.
        addr: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Access to an unmapped or illegal address.
    Fault {
        /// Offending core.
        core: u32,
        /// Accessed address.
        addr: u32,
        /// What went wrong.
        what: &'static str,
    },
    /// The program text does not decode (corrupt image).
    BadProgram {
        /// Word index within the text segment.
        index: usize,
    },
    /// The program's data segment does not fit the configured SPM.
    ProgramTooLarge {
        /// Bytes of initialized data + bss the program needs.
        footprint: u32,
        /// Configured SPM size in bytes.
        spm_bytes: u32,
    },
    /// The configuration itself is inconsistent.
    Config(ConfigError),
    /// A machine checkpoint could not be restored (truncated or corrupt
    /// buffer, or a snapshot taken on an incompatible machine).
    BadSnapshot {
        /// What was wrong with the snapshot.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalPc { core, pc } => {
                write!(f, "core {core}: illegal pc {pc:#010x}")
            }
            SimError::Breakpoint { core, pc, line } => {
                write!(f, "core {core}: ebreak at {pc:#010x} (line {line:?})")
            }
            SimError::Misaligned {
                core,
                pc,
                addr,
                line,
            } => write!(
                f,
                "core {core}: misaligned access to {addr:#010x} at pc {pc:#010x} (line {line:?})"
            ),
            SimError::Fault { core, addr, what } => {
                write!(f, "core {core}: {what} at {addr:#010x}")
            }
            SimError::BadProgram { index } => {
                write!(f, "text word {index} does not decode")
            }
            SimError::ProgramTooLarge {
                footprint,
                spm_bytes,
            } => {
                write!(
                    f,
                    "program data ({footprint} B) exceeds SPM ({spm_bytes} B)"
                )
            }
            SimError::Config(ref e) => write!(f, "invalid configuration: {e}"),
            SimError::BadSnapshot { ref what } => {
                write!(f, "cannot restore snapshot: {what}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

/// The simulated manycore system.
pub struct Machine {
    cfg: SimConfig,
    topo: MempoolTopology,
    program: Arc<DecodedProgram>,
    cores: Vec<Core>,
    qnodes: Vec<Qnode>,
    adapters: Vec<Box<dyn SyncAdapter>>,
    banks: Vec<Vec<u32>>,
    req_net: Network<ReqMsg>,
    resp_net: Network<RespMsg>,
    core_outbox: Vec<VecDeque<ReqMsg>>,
    bank_outbox: Vec<VecDeque<RespMsg>>,
    /// Banks with a non-empty response outbox, sorted ascending.
    dirty_banks: Vec<u32>,
    cycle: u64,
    halted: usize,
    barrier_waiting: usize,
    debug_log: Vec<(u64, u32, u32)>,
    /// Tracing switch: [`Tracer::Off`] by default. Parallel phases buffer
    /// events per shard; the coordinator drains the buffers in shard
    /// order, so the stream is identical for any shard count (tracing
    /// observes, it never steers).
    tracer: Tracer,
    /// Per-core blocking-operation kind; gives [`TraceEvent::Wake`] its
    /// cause. Maintained unconditionally (not just while tracing) so the
    /// field is part of canonical machine state and survives snapshots
    /// taken from untraced machines.
    park_kind: Vec<OpKind>,
    /// Host-side phase profiler: [`Profiler::Off`] by default, following
    /// the same discipline as `tracer` — off is one predictable branch
    /// per site, and profiling never perturbs simulated results (it only
    /// reads host clocks between phases).
    profiler: Profiler,
    /// Chaos fault-injection engine, built from [`SimConfig::chaos`] at
    /// construction. [`Chaos::Off`] (the default) follows the
    /// `tracer`/`profiler` discipline: one predictable branch per
    /// injection site, results bit-identical to a build without the
    /// engine. All injection happens in sequential coordinator code
    /// (eviction pre-pass, bank-outbox flush, core-outbox drain,
    /// arbitration start), keyed on quantities the determinism contract
    /// already fixes — so chaos-on runs are equally deterministic across
    /// exec modes and shard counts. Mutation candidate counters (the only
    /// stateful part) are not captured by snapshots: combining mutations
    /// with mid-run checkpoint/restore is unsupported.
    chaos: Chaos,
    /// Cores in `Running` state, sorted ascending (event-driven Phase 4).
    runnable: Vec<u32>,
    /// Cores that became `Running` outside the Phase 4 walk (response
    /// deliveries, barrier releases), merged into `runnable` next walk.
    pending_wake: Vec<u32>,
    /// Cores with a non-empty request outbox, sorted ascending
    /// (event-driven Phase 5).
    dirty_cores: Vec<u32>,
    /// Worker pool for `cfg.shards > 1`; `None` runs phases inline.
    pool: Option<WorkerPool>,
    /// The single shard's scratch when no pool exists.
    seq_scratch: ShardScratch,
    // Scratch buffers (allocation-free steady state).
    req_buf: Vec<ReqMsg>,
    resp_buf: Vec<RespMsg>,
    /// Delivered requests of this cycle as (bank, delivery index), sorted —
    /// the bank-id-ordered service schedule shared by all shard counts.
    req_order: Vec<(u32, u32)>,
    bank_scratch: Vec<u32>,
    core_scratch: Vec<u32>,
    merge_scratch: Vec<u32>,
    /// Superblock translation of the program image, built at
    /// construction when `cfg.exec_mode == ExecMode::Translated` (kept
    /// `None` otherwise) and shared with the `DecodedProgram`'s cache —
    /// sweeps and snapshot restores reuse it, never rebuild it.
    translation: Option<Arc<Translation>>,
    /// Cycle horizon superblocks may run ahead to. Set by
    /// [`Machine::run_until`] for the duration of the run loop (clamped
    /// to the watchdog and the target) and reset to 0 on exit, so direct
    /// [`Machine::step_cycle`] callers execute exactly one instruction
    /// per core per visit in every mode.
    step_limit: u64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("banks", &self.banks.len())
            .field("shards", &self.cfg.shards)
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .finish()
    }
}

impl Machine {
    /// Builds a machine and loads `program` (text into ROM, data into SPM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] when a text word does not decode,
    /// [`SimError::ProgramTooLarge`] when the data image exceeds the SPM,
    /// and [`SimError::Config`] when the configuration is inconsistent
    /// (see [`SimConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics when the program's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn new(cfg: SimConfig, program: &Program) -> Result<Machine, SimError> {
        Machine::with_decoded(cfg, Machine::decode(program)?)
    }

    /// Decodes a program into an image shareable across machines.
    ///
    /// Sweep runners decode each distinct program once and hand the same
    /// [`Arc`] to every worker via [`Machine::with_decoded`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] when a text word does not decode.
    ///
    /// # Panics
    ///
    /// Panics when the program's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn decode(program: &Program) -> Result<Arc<DecodedProgram>, SimError> {
        assert_eq!(
            program.text_base, ROM_BASE,
            "assemble kernels with the default text base"
        );
        DecodedProgram::from_program(program)
            .map(Arc::new)
            .map_err(|index| SimError::BadProgram { index })
    }

    /// Builds a machine around an already-decoded (possibly shared)
    /// program image. With [`SimConfig::shards`]` > 1` this also spawns
    /// the persistent worker pool (joined again when the machine drops).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProgramTooLarge`] when the data image exceeds
    /// the SPM and [`SimError::Config`] when the configuration is
    /// inconsistent (see [`SimConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics when the image's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn with_decoded(cfg: SimConfig, program: Arc<DecodedProgram>) -> Result<Machine, SimError> {
        assert_eq!(
            program.base, ROM_BASE,
            "assemble kernels with the default text base"
        );
        cfg.validate()?;
        let topo = MempoolTopology::new(cfg.topology);
        let num_cores = cfg.topology.num_cores;
        let num_banks = cfg.topology.num_banks();
        let words_per_bank = cfg.words_per_bank();
        let footprint = program.bss_base + program.bss_size;
        if footprint > cfg.spm_bytes {
            return Err(SimError::ProgramTooLarge {
                footprint,
                spm_bytes: cfg.spm_bytes,
            });
        }

        let entry = program.entry;
        // Translate at construction (not lazily in the run loop) so the
        // steady-state cycle stays allocation-free and sweep workers
        // sharing the image behind an `Arc` translate exactly once.
        let translation =
            (cfg.exec_mode == ExecMode::Translated).then(|| Arc::clone(program.translation()));
        let mut machine = Machine {
            topo,
            program: Arc::clone(&program),
            cores: (0..num_cores as u32)
                .map(|id| Core::new(id, entry))
                .collect(),
            qnodes: vec![Qnode::new(); num_cores],
            adapters: (0..num_banks).map(|_| cfg.arch.build(num_cores)).collect(),
            banks: vec![vec![0u32; words_per_bank]; num_banks],
            req_net: MempoolTopology::new(cfg.topology).build_request_network(),
            resp_net: MempoolTopology::new(cfg.topology).build_response_network(),
            core_outbox: vec![VecDeque::new(); num_cores],
            bank_outbox: vec![VecDeque::new(); num_banks],
            dirty_banks: Vec::new(),
            cycle: 0,
            halted: 0,
            barrier_waiting: 0,
            debug_log: Vec::new(),
            tracer: Tracer::Off,
            profiler: Profiler::Off,
            chaos: Chaos::from_plan(cfg.chaos),
            park_kind: vec![OpKind::Load; num_cores],
            runnable: (0..num_cores as u32).collect(),
            pending_wake: Vec::with_capacity(num_cores),
            dirty_cores: Vec::with_capacity(num_cores),
            pool: (cfg.shards > 1).then(|| WorkerPool::new(cfg.shards, num_banks, num_cores)),
            seq_scratch: ShardScratch::default(),
            req_buf: Vec::new(),
            resp_buf: Vec::new(),
            req_order: Vec::new(),
            bank_scratch: Vec::with_capacity(num_banks),
            core_scratch: Vec::with_capacity(num_cores),
            merge_scratch: Vec::with_capacity(num_cores),
            translation,
            step_limit: 0,
            cfg,
        };

        // Load the initialized data image.
        for (i, chunk) in program.data.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            machine.write_word(program.data_base + 4 * i as u32, u32::from_le_bytes(word));
        }
        Ok(machine)
    }

    /// The active execution mode, fixed at construction by
    /// [`SimConfig::exec_mode`] (select it through
    /// [`crate::SimConfigBuilder::exec_mode`]).
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    /// Number of simulation shards (1 = fully inline), fixed at
    /// construction by [`SimConfig::shards`] (select it through
    /// [`crate::SimConfigBuilder::shards`]).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// The superblock translation this machine executes with — `Some`
    /// exactly in [`ExecMode::Translated`]. The `Arc` is shared with the
    /// program image's cache (`DecodedProgram::translation`), so two
    /// machines on the same image — or one machine across a
    /// [`Machine::restore`] — return pointer-identical translations.
    #[must_use]
    pub fn translation(&self) -> Option<&Arc<Translation>> {
        self.translation.as_ref()
    }

    /// Attaches a trace sink. Must be called before the first cycle so
    /// the sink observes a complete run. Emits
    /// [`TraceEvent::Start`] immediately with the machine geometry.
    ///
    /// Tracing never perturbs simulation: cycle counts, statistics and
    /// memory contents are bit-identical with and without a sink (the
    /// sink only observes), and the event stream itself is identical for
    /// every shard count (parallel phases buffer per shard; the
    /// coordinator drains in shard order). With no sink attached (the
    /// default) the phase bodies are monomorphized over a no-op context —
    /// the differential and counting-allocator suites run untraced and
    /// prove the hot path unchanged.
    ///
    /// To read results back after [`Machine::run`], hand in a
    /// [`lrscwait_trace::SharedSink`] clone and keep the other handle.
    ///
    /// # Panics
    ///
    /// Panics when the machine has already been stepped.
    pub fn set_tracer(&mut self, sink: Box<dyn TraceSink>) {
        assert_eq!(self.cycle, 0, "attach the trace sink before running");
        self.tracer = Tracer::sink(sink);
        let cores = self.cores.len() as u32;
        let banks = self.banks.len() as u32;
        self.tracer.emit(0, || TraceEvent::Start { cores, banks });
    }

    /// Whether a trace sink is attached.
    #[must_use]
    pub fn tracing(&self) -> bool {
        !self.tracer.is_off()
    }

    /// Enables the host-side phase profiler (off by default) and, when
    /// the machine is sharded, the worker pool's utilization counters.
    ///
    /// Profiling is strictly host-side: it reads monotonic clocks between
    /// `step_cycle` sub-phases and never touches simulated state, so
    /// cycle counts, statistics, memory contents and trace streams are
    /// bit-identical with the profiler on or off (the differential suite
    /// proves it). When off, each instrumentation site costs one
    /// predictable branch, mirroring the [`Tracer`] discipline.
    pub fn enable_profiler(&mut self, cfg: ProfilerConfig) {
        self.profiler = Profiler::enabled(cfg);
        if let Some(pool) = &self.pool {
            pool.enable_telemetry();
        }
    }

    /// Whether the phase profiler is collecting.
    #[must_use]
    pub fn profiling(&self) -> bool {
        !self.profiler.is_off()
    }

    /// Snapshot of the phase profile collected so far (`None` when the
    /// profiler is off). Callable mid-run and after; snapshots are
    /// cumulative.
    #[must_use]
    pub fn profile(&self) -> Option<PhaseProfile> {
        let workers = self
            .pool
            .as_ref()
            .map(WorkerPool::worker_util)
            .unwrap_or_default();
        self.profiler.snapshot(self.shard_count(), workers)
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Values written to the MMIO PRINT register: `(cycle, core, value)`.
    #[must_use]
    pub fn debug_log(&self) -> &[(u64, u32, u32)] {
        &self.debug_log
    }

    /// Cores that have halted (executed `ecall` or wrote the EXIT
    /// register) so far — `cores() - halted_cores()` live cores remain.
    #[must_use]
    pub fn halted_cores(&self) -> usize {
        self.halted
    }

    /// Total cores in the machine.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Bank holding the word at `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.banks.len() as u32
    }

    /// Host read of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        assert!(addr < self.cfg.spm_bytes, "host read outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize]
    }

    /// Host write of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        assert!(addr < self.cfg.spm_bytes, "host write outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize] = value;
    }

    /// Host-side store injection between cycles — the write primitive
    /// behind the open-loop traffic harness's guest-visible injection
    /// mailbox (`lrscwait-traffic`).
    ///
    /// Unlike [`Machine::write_word`], the store goes through the owning
    /// bank's synchronization adapter exactly as a core's store would: it
    /// fires armed `mwait` monitors, breaks LR reservations and counts in
    /// the adapter statistics. Wake responses the adapter produces are
    /// queued on the bank's outbox and travel the response network with
    /// ordinary latency from the next cycle on. The host itself is not a
    /// core: its store applies instantly (no request-network round trip)
    /// and its acknowledgement is discarded.
    ///
    /// Injections are machine state like any other event: runs performing
    /// the same injections at the same cycles stay bit-identical across
    /// execution modes, shard counts and tracing.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM or not word-aligned.
    pub fn inject_store(&mut self, addr: u32, value: u32) {
        assert!(addr < self.cfg.spm_bytes, "host store outside SPM");
        assert_eq!(addr % 4, 0, "host stores are word-aligned");
        let now = self.cycle;
        let bank = self.bank_of(addr);
        let num_banks = self.banks.len() as u32;
        self.tracer.emit(now, || TraceEvent::Inject { addr, value });
        let req = MemRequest::Store {
            addr,
            value,
            mask: !0,
        };
        let mut out = Vec::new();
        {
            let mut view = phases::BankView {
                words: &mut self.banks[bank as usize],
                num_banks,
                bank,
            };
            let adapter = &mut self.adapters[bank as usize];
            if self.tracer.is_off() {
                adapter.handle(HOST_CORE, &req, &mut view, &mut out);
            } else {
                let tracer = &mut self.tracer;
                adapter.handle_traced(HOST_CORE, &req, &mut view, &mut out, &mut |event| {
                    tracer.emit(now, || TraceEvent::Sync { bank, event });
                });
            }
        }
        let was_empty = self.bank_outbox[bank as usize].is_empty();
        let mut queued = false;
        for (core, resp) in out {
            if core == HOST_CORE {
                debug_assert_eq!(resp, MemResponse::StoreAck);
                continue;
            }
            self.bank_outbox[bank as usize].push_back(RespMsg { core, resp });
            queued = true;
        }
        if was_empty && queued {
            if let Err(pos) = self.dirty_banks.binary_search(&bank) {
                self.dirty_banks.insert(pos, bank);
            }
        }
    }

    /// Gathers current statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut adapters = AdapterStats::default();
        for a in &self.adapters {
            let s = a.stats();
            adapters.requests += s.requests;
            adapters.loads += s.loads;
            adapters.stores += s.stores;
            adapters.amos += s.amos;
            adapters.sc_success += s.sc_success;
            adapters.sc_failure += s.sc_failure;
            adapters.wait_enqueued += s.wait_enqueued;
            adapters.wait_failfast += s.wait_failfast;
            adapters.scwait_success += s.scwait_success;
            adapters.scwait_failure += s.scwait_failure;
            adapters.successor_updates += s.successor_updates;
            adapters.wakeups += s.wakeups;
            adapters.reservations_broken += s.reservations_broken;
        }
        let lazy = self.cfg.exec_mode.event_scheduled();
        SimStats {
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let mut stats = c.stats;
                    if lazy {
                        // Flush the deferred parked-cycle delta for cores
                        // still asleep: the reference would have counted
                        // one cycle per Phase 4 visit since parking.
                        match c.state {
                            CoreState::WaitingMem => {
                                stats.sleep_cycles += self.cycle - c.parked_at;
                            }
                            CoreState::Barrier => {
                                stats.barrier_cycles += self.cycle - c.parked_at;
                            }
                            CoreState::Running | CoreState::Halted => {}
                        }
                    }
                    stats
                })
                .collect(),
            req_network: self.req_net.stats(),
            resp_network: self.resp_net.stats(),
            adapters,
        }
    }

    /// Runs until every core halts or the watchdog fires.
    ///
    /// In [`ExecMode::EventDriven`] mode, cycles in which provably nothing
    /// can happen — every runnable core is pipeline-stalled, the outboxes
    /// are drained, and no network flit becomes movable — are skipped by
    /// jumping the cycle counter straight to the next event (or to the
    /// watchdog limit, whichever comes first). Skipped stall cycles are
    /// credited in bulk so statistics stay bit-identical to stepping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs (illegal pc, misalignment,
    /// breakpoints, faults).
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        self.run_until(u64::MAX)
    }

    /// Runs until every core halts, the watchdog fires, or the cycle
    /// counter reaches `target` — whichever comes first.
    ///
    /// Stopping at `target` is *transparent*: continuing afterwards (with
    /// another `run_until` or [`Machine::run`]) produces exactly the
    /// machine an uninterrupted run would have — fast-forward jumps are
    /// clamped at the target and their bulk stall credit splits exactly
    /// across the stop. This is the hook open-loop harnesses use to
    /// interleave host work ([`Machine::inject_store`],
    /// [`Machine::snapshot`]) with simulation at precise cycles.
    ///
    /// Returns [`ExitReason::TargetReached`] with `cycles >= target` only
    /// when the machine is still live at the target; halt and watchdog
    /// take precedence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs (illegal pc, misalignment,
    /// breakpoints, faults).
    pub fn run_until(&mut self, target: u64) -> Result<RunSummary, SimError> {
        // Open the superblock horizon for the duration of the run loop:
        // the translated fast path may execute ahead of the cycle
        // counter, but never past the watchdog or the stop target, so
        // both stay cycle-exact. Reset on every exit so direct
        // `step_cycle` callers get single-instruction horizons (and the
        // per-cycle differential tests can compare all modes step by
        // step).
        self.step_limit = self.cfg.max_cycles.min(target);
        let wall_start = (!self.profiler.is_off()).then(std::time::Instant::now);
        let result = self.run_inner(target);
        if let Some(started) = wall_start {
            self.profiler
                .add_wall_ns(started.elapsed().as_nanos() as u64);
        }
        self.step_limit = 0;
        result
    }

    fn run_inner(&mut self, target: u64) -> Result<RunSummary, SimError> {
        while self.halted < self.cores.len() {
            if self.cfg.exec_mode.event_scheduled() {
                self.fast_forward(self.cfg.max_cycles.min(target));
            }
            if self.cycle >= self.cfg.max_cycles {
                return Ok(RunSummary {
                    cycles: self.cycle,
                    exit: ExitReason::Watchdog,
                });
            }
            if self.cycle >= target {
                return Ok(RunSummary {
                    cycles: self.cycle,
                    exit: ExitReason::TargetReached,
                });
            }
            self.step_cycle()?;
        }
        Ok(RunSummary {
            cycles: self.cycle,
            exit: ExitReason::AllHalted,
        })
    }

    /// Jumps `cycle` to just before the next event when the machine is
    /// provably idle until then.
    ///
    /// A cycle can only be skipped when stepping it would change nothing:
    /// no outbox holds traffic (pending injections touch network
    /// statistics every cycle), every runnable core still waits on
    /// `ready_at`, and no flit in either network becomes movable. The one
    /// observable effect of such a cycle — a stall tick per runnable core
    /// — is credited in bulk.
    ///
    /// `limit` clamps the jump (watchdog, or a [`Machine::run_until`]
    /// target). Clamping is loss-free for the statistics: a jump
    /// interrupted at `t` credits `t − now` stalls now and the resumed
    /// jump credits the rest, summing to what the unclamped jump would
    /// have credited.
    fn fast_forward(&mut self, limit: u64) {
        if !self.dirty_banks.is_empty() || !self.dirty_cores.is_empty() {
            return;
        }
        let now = self.cycle;
        let horizon = now + 1;
        let mut next = u64::MAX;
        // Cheapest scan first, bailing as soon as the very next cycle is
        // known to have work: compute-bound phases (every core issuing
        // with ready_at == now + 1) exit on the first core and never pay
        // the network scans.
        for &c in &self.runnable {
            let ready_at = self.cores[c as usize].ready_at;
            if ready_at <= horizon {
                return;
            }
            next = next.min(ready_at);
        }
        if let Some(t) = self.req_net.next_ready_at() {
            if t <= horizon {
                return;
            }
            next = next.min(t);
        }
        if let Some(t) = self.resp_net.next_ready_at() {
            if t <= horizon {
                return;
            }
            next = next.min(t);
        }
        debug_assert!(next > horizon);
        // `next == u64::MAX` means no event can ever occur (all-parked
        // deadlock): jump straight to the limit (normally the watchdog).
        let target = (next - 1).min(limit);
        if target <= now {
            return;
        }
        for i in 0..self.runnable.len() {
            let c = self.runnable[i] as usize;
            // A superblock that ran ahead already charged this core's
            // stalls up to `charged_until`; only credit the cycles
            // beyond it (always all of them outside Translated mode,
            // where `charged_until` stays 0).
            let from = now.max(self.cores[c].charged_until);
            if target > from {
                self.cores[c].stats.stall_cycles += target - from;
            }
        }
        self.cycle = target;
    }

    /// Advances the machine by exactly one cycle (see the module docs for
    /// the phase structure and the determinism contract).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs. On an error the faulting
    /// core's shard stops stepping at the fault while other shards finish
    /// their cycle; the reported error is the one on the lowest core id,
    /// matching the single-sharded walk.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        let now = self.cycle;
        let tracing = !self.tracer.is_off();
        let num_banks = self.banks.len() as u32;
        // Owned clock so the laps below don't borrow `self.profiler`
        // across the `&mut self` phase bodies; committed at the end.
        let mut clock = self.profiler.begin_cycle();

        // Phase 1a: advance the request network (sequential).
        let mut req_buf = std::mem::take(&mut self.req_buf);
        req_buf.clear();
        if tracing {
            let tracer = &mut self.tracer;
            self.req_net
                .advance_traced(now, &mut req_buf, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Request,
                        event,
                    });
                });
        } else {
            self.req_net.advance(now, &mut req_buf);
        }
        clock.lap(Phase::ReqNetAdvance);

        // Phase 1b: service the delivered requests, grouped by destination
        // bank and processed in (bank id, delivery index) order — the one
        // schedule every shard count shares. Within a bank, delivery order
        // is preserved (the per-(core, bank) FIFO Colibri relies on).
        self.req_order.clear();
        self.req_order
            .extend(req_buf.iter().enumerate().map(|(i, m)| (m.bank, i as u32)));
        self.req_order.sort_unstable();
        // Chaos eviction pre-pass (sequential, before the parallel bank
        // service): walk the service schedule and spuriously evict
        // reservations immediately before their requests are serviced.
        // A spurious `sc`/`scwait` failure *is* such an eviction — the
        // adapters' own fail paths then advance their queues exactly as
        // for a reservation lost to an intervening write, so all protocol
        // state stays consistent by construction. Decisions are stateless
        // hashes of (seed, cycle, bank, delivery index) — identical in
        // every exec mode and shard count.
        if let Chaos::On(state) = self.chaos {
            let plan = state.plan;
            if plan.evict_per_mille > 0 || plan.sc_fail_per_mille > 0 {
                let order = std::mem::take(&mut self.req_order);
                let adapters = &mut self.adapters;
                let tracer = &mut self.tracer;
                for &(bank, idx) in &order {
                    let req = &req_buf[idx as usize].req;
                    let is_sc = matches!(req, MemRequest::Sc { .. } | MemRequest::ScWait { .. });
                    let evict = if is_sc {
                        plan.fail_sc(now, bank, idx)
                    } else {
                        plan.evict_request(now, bank, idx)
                    };
                    if evict {
                        adapters[bank as usize].chaos_evict(req.addr(), &mut |event| {
                            tracer.emit(now, || TraceEvent::Sync { bank, event });
                        });
                    }
                }
                self.req_order = order;
            }
        }
        self.reset_scratch();
        let bank_job = Job::Banks {
            reqs: req_buf.as_ptr(),
            reqs_len: req_buf.len(),
            order: self.req_order.as_ptr(),
            order_len: self.req_order.len(),
            banks: self.banks.as_mut_ptr(),
            adapters: self.adapters.as_mut_ptr(),
            bank_outbox: self.bank_outbox.as_mut_ptr(),
            num_banks,
            tracing,
        };
        if let Some(pool) = &mut self.pool {
            pool.dispatch(bank_job);
        } else {
            phases::service_banks(
                0,
                &mut self.banks,
                &mut self.adapters,
                &mut self.bank_outbox,
                num_banks,
                &req_buf,
                &self.req_order,
                &mut self.seq_scratch,
                tracing,
            );
        }
        self.req_buf = req_buf;
        clock.lap(Phase::BankService);
        self.drain_shard_traces(now);
        self.merge_new_dirty_banks();
        clock.lap(Phase::CrossShardMerge);

        // Phase 2: flush bank outboxes into the response network, in bank
        // id order (deterministic for every shard count).
        if !self.dirty_banks.is_empty() {
            let mut still_dirty = std::mem::take(&mut self.bank_scratch);
            still_dirty.clear();
            let dirty = std::mem::take(&mut self.dirty_banks);
            for &bank in &dirty {
                while let Some(&msg) = self.bank_outbox[bank as usize].front() {
                    // Chaos: mutations rewrite/drop the response and wake
                    // delay / jitter add injection latency. Mutation
                    // counters are committed only when the message actually
                    // leaves the outbox, so network backpressure cannot
                    // double-count a candidate.
                    let (send, extra, staged) = match &self.chaos {
                        Chaos::Off => (Some(msg), 0, None),
                        Chaos::On(state) => {
                            let mut staged = *state;
                            let send = staged.mutate_response(msg.resp).map(|resp| RespMsg {
                                core: msg.core,
                                resp,
                            });
                            let extra = state.plan.response_delay(now, bank, msg.core, &msg.resp);
                            (send, extra, Some(staged))
                        }
                    };
                    let Some(send) = send else {
                        // Mutation dropped the response on the floor.
                        self.bank_outbox[bank as usize].pop_front();
                        self.chaos = Chaos::On(staged.expect("drop implies chaos on"));
                        continue;
                    };
                    let route = self.topo.response_route(bank as usize, send.core as usize);
                    match self.resp_try_send(route, send, now, extra) {
                        Ok(()) => {
                            self.bank_outbox[bank as usize].pop_front();
                            if let Some(staged) = staged {
                                self.chaos = Chaos::On(staged);
                            }
                        }
                        Err(_) => break,
                    }
                }
                if !self.bank_outbox[bank as usize].is_empty() {
                    still_dirty.push(bank);
                }
            }
            self.dirty_banks = still_dirty;
            self.bank_scratch = dirty;
        }
        clock.lap(Phase::BankFlush);

        // Phase 3: responses reach cores (through their Qnodes).
        let mut resp_buf = std::mem::take(&mut self.resp_buf);
        resp_buf.clear();
        if tracing {
            let tracer = &mut self.tracer;
            self.resp_net
                .advance_traced(now, &mut resp_buf, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Response,
                        event,
                    });
                });
        } else {
            self.resp_net.advance(now, &mut resp_buf);
        }
        clock.lap(Phase::RespNetAdvance);
        for msg in &resp_buf {
            let c = msg.core as usize;
            let output = self.qnodes[c].on_response(msg.resp);
            if let Some(delivered) = output.deliver {
                self.complete_response(c, delivered, now);
            }
            if let Some(wakeup) = output.wakeup {
                let bank = self.bank_of(wakeup.addr());
                self.tracer.emit(now, || TraceEvent::ReqSent {
                    core: msg.core,
                    bank,
                    kind: OpKind::WakeUp,
                });
                self.push_outbox(
                    c,
                    ReqMsg {
                        src: msg.core,
                        bank,
                        req: wakeup,
                    },
                );
            }
        }
        self.resp_buf = resp_buf;
        clock.lap(Phase::RespDelivery);

        // Phase 4: step the cores (event-driven: runnable set only;
        // translated: runnable set + superblock fast path; reference:
        // every core with eager parked accounting).
        if self.cfg.exec_mode.event_scheduled() {
            self.merge_pending_wakes();
        }
        self.reset_scratch();
        // Superblocks may run ahead to the run loop's horizon; outside
        // `run`/`run_until` the horizon collapses to `now` (exactly one
        // instruction per visit, like the interpreter modes).
        let horizon = self.step_limit.max(now);
        let core_job = Job::Cores {
            cores: self.cores.as_mut_ptr(),
            qnodes: self.qnodes.as_mut_ptr(),
            core_outbox: self.core_outbox.as_mut_ptr(),
            park_kind: self.park_kind.as_mut_ptr(),
            runnable: self.runnable.as_ptr(),
            runnable_len: self.runnable.len(),
            program: Arc::as_ptr(&self.program),
            translation: self.translation.as_deref().map_or(std::ptr::null(), |t| t),
            cfg: &self.cfg,
            num_banks,
            now,
            horizon,
            mode: self.cfg.exec_mode,
            tracing,
        };
        if let Some(pool) = &mut self.pool {
            pool.dispatch(core_job);
        } else {
            let translation = self.translation.as_deref();
            let mut ctx = CorePhase {
                core_lo: 0,
                cores: &mut self.cores,
                qnodes: &mut self.qnodes,
                core_outbox: &mut self.core_outbox,
                park_kind: &mut self.park_kind,
                program: &self.program,
                cfg: &self.cfg,
                num_banks,
            };
            match self.cfg.exec_mode {
                ExecMode::EventDriven => phases::step_runnable_cores(
                    &mut ctx,
                    &self.runnable,
                    now,
                    &mut self.seq_scratch,
                    tracing,
                ),
                ExecMode::Translated => phases::step_translated_cores(
                    &mut ctx,
                    translation.expect("translated machine builds its translation at construction"),
                    &self.runnable,
                    now,
                    horizon,
                    &mut self.seq_scratch,
                    tracing,
                ),
                ExecMode::Reference => {
                    phases::step_all_cores(&mut ctx, now, &mut self.seq_scratch, tracing);
                }
            }
        }
        clock.lap(Phase::CoreStep);
        let step_error = self.merge_core_phase(now);
        clock.lap(Phase::CrossShardMerge);
        if let Some(err) = step_error {
            return Err(err);
        }

        // Sequential sub-phase: barrier release. Deferred here so the
        // accounting is independent of the stepping order (and therefore
        // of the shard count).
        self.release_barrier_if_ready(now);
        clock.lap(Phase::BarrierRelease);

        // Phase 5: flush core outboxes into the request network. The start
        // index rotates each cycle so no core gets static injection
        // priority (round-robin arbitration, as in the real fabric).
        if self.cfg.exec_mode.event_scheduled() {
            if !self.dirty_cores.is_empty() {
                let n = self.cores.len();
                let start = match &self.chaos {
                    Chaos::On(state) if state.plan.perturb_arbitration => {
                        state.plan.arbitration_start(now, n as u64) as u32
                    }
                    _ => (now % n as u64) as u32,
                };
                let dirty = std::mem::take(&mut self.dirty_cores);
                let split = dirty.partition_point(|&c| c < start);
                for &c in dirty[split..].iter().chain(dirty[..split].iter()) {
                    self.drain_core_outbox(c as usize, now);
                }
                let mut keep = std::mem::take(&mut self.core_scratch);
                keep.clear();
                keep.extend(
                    dirty
                        .iter()
                        .copied()
                        .filter(|&c| !self.core_outbox[c as usize].is_empty()),
                );
                self.dirty_cores = keep;
                self.core_scratch = dirty;
            }

            // Barrier releases become runnable next cycle; merge now
            // so `fast_forward` sees their `ready_at`.
            self.merge_pending_wakes();
        } else {
            let n = self.cores.len();
            let start = match &self.chaos {
                Chaos::On(state) if state.plan.perturb_arbitration => {
                    state.plan.arbitration_start(now, n as u64) as usize
                }
                _ => (now as usize) % n,
            };
            for i in 0..n {
                let c = (start + i) % n;
                self.drain_core_outbox(c, now);
            }
        }
        clock.lap(Phase::CoreFlush);
        self.profiler.commit(&clock);
        Ok(())
    }

    /// Number of shards the phases run across.
    fn shard_count(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::shards)
    }

    /// Clears every shard scratch for the next parallel phase.
    fn reset_scratch(&mut self) {
        match &mut self.pool {
            Some(pool) => pool.reset_scratch(),
            None => self.seq_scratch.reset(),
        }
    }

    /// Mutable access to shard `s`'s scratch (coordinator, between
    /// phases).
    fn scratch_at(&mut self, s: usize) -> &mut ShardScratch {
        match &mut self.pool {
            Some(pool) => pool.scratch_mut(s),
            None => &mut self.seq_scratch,
        }
    }

    /// Emits the parallel phase's buffered trace events in shard (= id)
    /// order — identical to the order a single-sharded walk emits in.
    fn drain_shard_traces(&mut self, now: u64) {
        if self.tracer.is_off() {
            return;
        }
        for s in 0..self.shard_count() {
            let mut buf = std::mem::take(&mut self.scratch_at(s).trace);
            for event in buf.drain(..) {
                self.tracer.emit(now, || event);
            }
            self.scratch_at(s).trace = buf;
        }
    }

    /// Merges the bank phase's empty → non-empty outbox transitions into
    /// the sorted dirty-bank list.
    fn merge_new_dirty_banks(&mut self) {
        for s in 0..self.shard_count() {
            let add = std::mem::take(&mut self.scratch_at(s).new_dirty_banks);
            let mut scratch = std::mem::take(&mut self.bank_scratch);
            merge_sorted(&mut self.dirty_banks, &add, &mut scratch);
            self.bank_scratch = scratch;
            self.scratch_at(s).new_dirty_banks = add;
        }
    }

    /// Folds the core phase's per-shard outputs into the machine, in shard
    /// (= core id) order: trace events, debug prints, halt/barrier counts,
    /// the rebuilt runnable set and the dirty-core merge. Returns the
    /// lowest-core fatal error, if any shard faulted.
    fn merge_core_phase(&mut self, now: u64) -> Option<SimError> {
        self.drain_shard_traces(now);
        let shards = self.shard_count();
        let event_driven = self.cfg.exec_mode.event_scheduled();
        let mut error: Option<(u32, SimError)> = None;
        if event_driven {
            self.merge_scratch.clear();
        }
        for s in 0..shards {
            // Prints → debug log (ascending core order by construction).
            let mut prints = std::mem::take(&mut self.scratch_at(s).prints);
            for &(core, value) in &prints {
                self.debug_log.push((now, core, value));
            }
            prints.clear();
            self.scratch_at(s).prints = prints;

            let (newly_halted, newly_barrier, shard_error) = {
                let sc = self.scratch_at(s);
                let err = sc.error.take().map(|e| (sc.error_core, e));
                (sc.newly_halted, sc.newly_barrier, err)
            };
            self.halted += newly_halted as usize;
            self.barrier_waiting += newly_barrier as usize;
            if let Some((core, err)) = shard_error {
                if error.as_ref().is_none_or(|(c, _)| core < *c) {
                    error = Some((core, err));
                }
            }
            if event_driven {
                let kept = std::mem::take(&mut self.scratch_at(s).kept_runnable);
                self.merge_scratch.extend_from_slice(&kept);
                self.scratch_at(s).kept_runnable = kept;

                let add = std::mem::take(&mut self.scratch_at(s).new_dirty_cores);
                let mut scratch = std::mem::take(&mut self.bank_scratch);
                merge_sorted(&mut self.dirty_cores, &add, &mut scratch);
                self.bank_scratch = scratch;
                self.scratch_at(s).new_dirty_cores = add;
            }
        }
        if event_driven {
            std::mem::swap(&mut self.runnable, &mut self.merge_scratch);
        }
        error.map(|(_, err)| err)
    }

    /// Injects a core's queued requests until the network backpressures.
    fn drain_core_outbox(&mut self, c: usize, now: u64) {
        // Ordinal of the request within this core's drain this cycle —
        // the chaos request-jitter key (identical across exec modes and
        // shard counts: the drain is sequential coordinator code).
        let mut ordinal = 0u32;
        while let Some(&msg) = self.core_outbox[c].front() {
            let extra = match &self.chaos {
                Chaos::Off => 0,
                Chaos::On(state) => state.plan.request_jitter(now, c as u32, ordinal),
            };
            let route = self.topo.request_route(c, msg.bank as usize);
            match self.req_try_send(route, msg, now, extra) {
                Ok(()) => {
                    self.core_outbox[c].pop_front();
                    ordinal += 1;
                }
                Err(_) => break,
            }
        }
    }

    /// Request-network injection with the tracing hook applied when a
    /// sink is attached (identical behaviour either way) and `extra`
    /// cycles of chaos-injected latency (0 outside chaos runs).
    fn req_try_send(
        &mut self,
        route: lrscwait_noc::Route,
        msg: ReqMsg,
        now: u64,
        extra: u32,
    ) -> Result<(), ReqMsg> {
        if self.tracer.is_off() {
            self.req_net
                .try_send_extra_traced(route, msg, now, extra, &mut |_| {})
        } else {
            let tracer = &mut self.tracer;
            self.req_net
                .try_send_extra_traced(route, msg, now, extra, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Request,
                        event,
                    });
                })
        }
    }

    /// Response-network injection with the tracing hook applied when a
    /// sink is attached (identical behaviour either way) and `extra`
    /// cycles of chaos-injected latency (0 outside chaos runs).
    fn resp_try_send(
        &mut self,
        route: lrscwait_noc::Route,
        msg: RespMsg,
        now: u64,
        extra: u32,
    ) -> Result<(), RespMsg> {
        if self.tracer.is_off() {
            self.resp_net
                .try_send_extra_traced(route, msg, now, extra, &mut |_| {})
        } else {
            let tracer = &mut self.tracer;
            self.resp_net
                .try_send_extra_traced(route, msg, now, extra, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Response,
                        event,
                    });
                })
        }
    }

    /// Queues a request on a core's outbox (sequential Phase 3 path),
    /// tracking outbox dirtiness for the event-driven Phase 5.
    fn push_outbox(&mut self, c: usize, msg: ReqMsg) {
        self.core_outbox[c].push_back(msg);
        let id = c as u32;
        if let Err(pos) = self.dirty_cores.binary_search(&id) {
            self.dirty_cores.insert(pos, id);
        }
    }

    /// Merges cores woken outside the Phase 4 walk into the sorted
    /// runnable set.
    fn merge_pending_wakes(&mut self) {
        if self.pending_wake.is_empty() {
            return;
        }
        self.pending_wake.sort_unstable();
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        let (a, b) = (&self.runnable, &self.pending_wake);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                debug_assert_ne!(a[i], b[j], "core woken while already runnable");
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.pending_wake.clear();
        self.merge_scratch = std::mem::replace(&mut self.runnable, merged);
    }

    fn complete_response(&mut self, c: usize, resp: MemResponse, now: u64) {
        match resp {
            MemResponse::StoreAck => {
                debug_assert!(self.cores[c].outstanding_stores > 0);
                self.cores[c].outstanding_stores -= 1;
            }
            MemResponse::Load { value }
            | MemResponse::Amo { old: value }
            | MemResponse::Lr { value }
            | MemResponse::Wait { value, .. } => {
                self.cores[c].complete(value, now);
                self.emit_wake(c, now);
                self.wake_from_sleep(c, now);
            }
            MemResponse::Sc { success } | MemResponse::ScWait { success } => {
                self.cores[c].complete(u32::from(!success), now);
                self.emit_wake(c, now);
                self.wake_from_sleep(c, now);
            }
            MemResponse::SuccessorUpdate { .. } => {
                unreachable!("SuccessorUpdate must be consumed by the Qnode")
            }
        }
    }

    /// Emits the [`TraceEvent::Wake`] for a blocking-response delivery,
    /// with the operation the core parked on as the cause.
    fn emit_wake(&mut self, c: usize, now: u64) {
        if !self.tracer.is_off() {
            let cause = WakeCause::Response(self.park_kind[c]);
            self.tracer.emit(now, || TraceEvent::Wake {
                core: c as u32,
                cause,
            });
        }
    }

    /// Event-driven bookkeeping after a blocking response delivery at
    /// `now`: settle the lazy sleep-cycle delta (the reference counts a
    /// sleep cycle per Phase 4 visit, i.e. for cycles `parked_at+1 ..
    /// now-1`; the core runs again in this cycle's Phase 4) and queue the
    /// core for the runnable set.
    fn wake_from_sleep(&mut self, c: usize, now: u64) {
        if self.cfg.exec_mode.event_scheduled() {
            self.cores[c].stats.sleep_cycles += now - 1 - self.cores[c].parked_at;
            self.pending_wake.push(c as u32);
        }
    }

    /// Releases the barrier when every still-running core has arrived.
    ///
    /// Runs once per cycle, single-threaded, *after* the stepping phase —
    /// never inside it — so the accounting is independent of the order
    /// cores were visited in (and therefore of the shard count): every
    /// released core is charged `now − parked_at` barrier cycles, exactly
    /// what the reference's eager one-per-Phase-4-visit counting adds up
    /// to, and re-enters the runnable set with `ready_at = now + 1`.
    fn release_barrier_if_ready(&mut self, now: u64) {
        let running = self.cores.len() - self.halted;
        if running > 0 && self.barrier_waiting == running {
            let event_driven = self.cfg.exec_mode.event_scheduled();
            let waiting = self.barrier_waiting as u32;
            self.tracer
                .emit(now, || TraceEvent::BarrierRelease { waiting });
            for (x, core) in self.cores.iter_mut().enumerate() {
                if core.state == CoreState::Barrier {
                    core.state = CoreState::Running;
                    core.ready_at = now + 1;
                    self.tracer.emit(now, || TraceEvent::Wake {
                        core: x as u32,
                        cause: WakeCause::Barrier,
                    });
                    if event_driven {
                        core.stats.barrier_cycles += now - core.parked_at;
                        self.pending_wake.push(x as u32);
                    }
                }
            }
            self.barrier_waiting = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

/// Snapshot file magic.
const SNAP_MAGIC: [u8; 4] = *b"LRSW";
/// Snapshot format version this build writes and reads.
/// Version history: 1 = PR 6 initial format; 2 = adds the program-image
/// fingerprint (text length, entry, FNV-1a hash) after the geometry
/// header, so a restore can never resume — or execute translated
/// superblocks — against a different program than the snapshot ran.
const SNAP_VERSION: u32 = 2;
/// Pseudo core id for host-injected requests ([`Machine::inject_store`]);
/// responses addressed to it are consumed by the host, never routed.
const HOST_CORE: u32 = u32::MAX;

impl Machine {
    /// Serializes the complete machine state — cores (registers, pipeline
    /// and scheduling state, statistics), Qnodes, bank adapters, memory,
    /// both networks' in-flight flits and statistics, the outboxes and the
    /// debug log — into a self-describing buffer (see the `README`'s
    /// checkpoint section for the format and its versioning caveat).
    ///
    /// Restoring the buffer with [`Machine::restore`] and continuing is
    /// bit-identical to never having stopped: summaries, statistics,
    /// benchmark CSV bytes and trace-event suffixes all match, across
    /// execution modes and shard counts (the snapshot holds no mode- or
    /// shard-dependent state: lazily-accounted parked cycles are settled
    /// into the statistics at snapshot time, and the runnable/dirty
    /// worklists are recomputed on restore).
    ///
    /// Call between cycles (before [`Machine::run`], or after `run` /
    /// [`Machine::run_until`] returned), never from inside a stepping
    /// phase.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        debug_assert!(
            self.pending_wake.is_empty(),
            "snapshot must be taken between cycles"
        );
        let mut out = StateWriter::new();
        for b in SNAP_MAGIC {
            out.put_u8(b);
        }
        out.put_u32(SNAP_VERSION);
        let label = self.adapters[0].label();
        out.put_u32(label.len() as u32);
        for b in label.bytes() {
            out.put_u8(b);
        }
        out.put_u32(self.cores.len() as u32);
        out.put_u32(self.banks.len() as u32);
        out.put_u32(self.cfg.words_per_bank() as u32);
        // Program-image fingerprint: a snapshot resumes mid-program, so
        // restoring it onto a machine running different code would be
        // silently wrong in any mode — and would execute stale
        // superblocks in `ExecMode::Translated`. Mode-independent, so
        // snapshot bytes stay identical across modes.
        out.put_u32(self.program.raw.len() as u32);
        out.put_u32(self.program.entry);
        out.put_u64(program_fingerprint(&self.program));
        out.put_u64(self.cycle);

        let lazy = self.cfg.exec_mode.event_scheduled();
        for core in &self.cores {
            for r in core.regs {
                out.put_u32(r);
            }
            out.put_u32(core.pc);
            out.put_u8(core_state_code(core.state));
            out.put_u64(core.ready_at);
            // Canonical park time: parked-cycle deltas up to now are
            // settled into the statistics below, so the restored core's
            // charging starts at the snapshot cycle. (For running/halted
            // cores the field is dead — rewritten on the next park.)
            out.put_u64(self.cycle);
            match core.pending {
                Some(p) => {
                    out.put_bool(true);
                    out.put_u8(p.rd.index());
                    out.put_u32(p.addr);
                    match p.kind {
                        PendingKind::Load { width, signed } => {
                            out.put_u8(0);
                            out.put_u8(mem_width_code(width));
                            out.put_bool(signed);
                        }
                        PendingKind::Value => out.put_u8(1),
                        PendingKind::Flag => out.put_u8(2),
                    }
                }
                None => out.put_bool(false),
            }
            out.put_u32(core.outstanding_stores);
            let mut stats = core.stats;
            if lazy {
                // Same flush as `Machine::stats`: the reference would have
                // counted one parked cycle per Phase 4 visit since the
                // park, so the serialized statistics are identical in both
                // execution modes.
                match core.state {
                    CoreState::WaitingMem => stats.sleep_cycles += self.cycle - core.parked_at,
                    CoreState::Barrier => stats.barrier_cycles += self.cycle - core.parked_at,
                    CoreState::Running | CoreState::Halted => {}
                }
            }
            out.put_u64(stats.instret);
            out.put_u64(stats.active_cycles);
            out.put_u64(stats.stall_cycles);
            out.put_u64(stats.sleep_cycles);
            out.put_u64(stats.barrier_cycles);
            out.put_u64(stats.ops);
            out.put_opt_u64(stats.region_start);
            out.put_opt_u64(stats.region_end);
        }
        for q in &self.qnodes {
            q.save_state(&mut out);
        }
        for &k in &self.park_kind {
            out.put_u8(op_kind_code(k));
        }
        for a in &self.adapters {
            a.save_state(&mut out);
        }
        for bank in &self.banks {
            for &w in bank {
                out.put_u32(w);
            }
        }
        save_net(&mut out, &self.req_net, save_req);
        save_net(&mut out, &self.resp_net, save_resp);
        for q in &self.core_outbox {
            out.put_u32(q.len() as u32);
            for m in q {
                save_req(&mut out, m);
            }
        }
        for q in &self.bank_outbox {
            out.put_u32(q.len() as u32);
            for m in q {
                save_resp(&mut out, m);
            }
        }
        out.put_u32(self.debug_log.len() as u32);
        for &(cycle, core, value) in &self.debug_log {
            out.put_u64(cycle);
            out.put_u32(core);
            out.put_u32(value);
        }
        out.finish()
    }

    /// Replaces the machine's entire state with a [`Machine::snapshot`].
    ///
    /// The machine must have been built with the same geometry (cores,
    /// banks, SPM size) and synchronization architecture the snapshot was
    /// taken with; execution mode, shard count and tracing may all differ
    /// — continuing from the restored state is bit-identical to the
    /// uninterrupted run in any combination. A tracing machine emits the
    /// uninterrupted stream's suffix (after its own `Start` event).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadSnapshot`] when the buffer is truncated,
    /// corrupt, from an incompatible format version, or taken on a
    /// machine with different geometry or architecture. On error the
    /// machine state is unspecified — discard it.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SimError> {
        let mut src = StateReader::new(bytes);
        self.restore_inner(&mut src)
            .map_err(|RestoreFail(what)| SimError::BadSnapshot { what })
    }

    fn restore_inner(&mut self, src: &mut StateReader<'_>) -> Result<(), RestoreFail> {
        for expect in SNAP_MAGIC {
            if src.take_u8()? != expect {
                return Err(RestoreFail("not a machine snapshot (bad magic)".into()));
            }
        }
        let version = src.take_u32()?;
        if version != SNAP_VERSION {
            return Err(RestoreFail(format!(
                "unsupported snapshot version {version} (this build reads version {SNAP_VERSION})"
            )));
        }
        let label_len = src.take_u32()? as usize;
        if label_len > 256 {
            return Err(RestoreFail("implausible architecture label".into()));
        }
        let mut label = Vec::with_capacity(label_len);
        for _ in 0..label_len {
            label.push(src.take_u8()?);
        }
        let label = String::from_utf8(label)
            .map_err(|_| RestoreFail("architecture label is not UTF-8".into()))?;
        let own = self.adapters[0].label();
        if label != own {
            return Err(RestoreFail(format!(
                "snapshot is for architecture {label:?}, this machine is {own:?}"
            )));
        }
        let nc = src.take_u32()?;
        let nb = src.take_u32()?;
        let wpb = src.take_u32()?;
        if nc as usize != self.cores.len()
            || nb as usize != self.banks.len()
            || wpb as usize != self.cfg.words_per_bank()
        {
            return Err(RestoreFail(format!(
                "snapshot geometry ({nc} cores, {nb} banks, {wpb} words/bank) does not match \
                 machine ({} cores, {} banks, {} words/bank)",
                self.cores.len(),
                self.banks.len(),
                self.cfg.words_per_bank()
            )));
        }
        let text_len = src.take_u32()?;
        let entry = src.take_u32()?;
        let hash = src.take_u64()?;
        if text_len as usize != self.program.raw.len()
            || entry != self.program.entry
            || hash != program_fingerprint(&self.program)
        {
            return Err(RestoreFail(
                "snapshot was taken with a different program image".into(),
            ));
        }
        self.cycle = src.take_u64()?;
        for core in &mut self.cores {
            load_core(src, core)?;
        }
        for q in &mut self.qnodes {
            q.load_state(src)?;
        }
        for k in &mut self.park_kind {
            *k = op_kind_from(src.take_u8()?)?;
        }
        for a in &mut self.adapters {
            a.load_state(src)?;
        }
        for bank in &mut self.banks {
            for w in bank.iter_mut() {
                *w = src.take_u32()?;
            }
        }
        let num_cores = self.cores.len() as u32;
        let num_banks = self.banks.len() as u32;
        load_net(src, &mut self.req_net, |s| {
            load_req(s, num_cores, num_banks)
        })?;
        load_net(src, &mut self.resp_net, |s| load_resp(s, num_cores))?;
        for q in &mut self.core_outbox {
            q.clear();
            let len = src.take_u32()?;
            for _ in 0..len {
                q.push_back(load_req(src, num_cores, num_banks)?);
            }
        }
        for q in &mut self.bank_outbox {
            q.clear();
            let len = src.take_u32()?;
            for _ in 0..len {
                q.push_back(load_resp(src, num_cores)?);
            }
        }
        self.debug_log.clear();
        let len = src.take_u32()?;
        for _ in 0..len {
            let cycle = src.take_u64()?;
            let core = src.take_u32()?;
            let value = src.take_u32()?;
            self.debug_log.push((cycle, core, value));
        }
        if src.remaining() != 0 {
            return Err(RestoreFail("trailing bytes after snapshot".into()));
        }

        // Derived state. At a cycle boundary the worklists are functions
        // of the serialized state: the runnable set is exactly the cores
        // in `Running` (pending wakes are always merged before the cycle
        // ends), and a bank/core is dirty iff its outbox is non-empty.
        self.halted = self
            .cores
            .iter()
            .filter(|c| c.state == CoreState::Halted)
            .count();
        self.barrier_waiting = self
            .cores
            .iter()
            .filter(|c| c.state == CoreState::Barrier)
            .count();
        self.pending_wake.clear();
        self.runnable.clear();
        self.runnable.extend(
            self.cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.state == CoreState::Running)
                .map(|(i, _)| i as u32),
        );
        self.dirty_banks.clear();
        self.dirty_banks.extend(
            self.bank_outbox
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(i, _)| i as u32),
        );
        self.dirty_cores.clear();
        self.dirty_cores.extend(
            self.core_outbox
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(i, _)| i as u32),
        );
        Ok(())
    }
}

/// FNV-1a-64 over the program identity (text base, entry point, raw text
/// words as little-endian bytes). A fixed, explicit algorithm — not the
/// standard library's unstable `DefaultHasher` — so snapshots stay
/// portable across toolchain versions and builds.
fn program_fingerprint(program: &DecodedProgram) -> u64 {
    fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3))
    }
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, &program.base.to_le_bytes());
    h = fnv1a(h, &program.entry.to_le_bytes());
    for &word in &program.raw {
        h = fnv1a(h, &word.to_le_bytes());
    }
    h
}

/// Restore failure message; converted to [`SimError::BadSnapshot`] at the
/// public boundary.
struct RestoreFail(String);

impl From<StateError> for RestoreFail {
    fn from(e: StateError) -> RestoreFail {
        RestoreFail(e.to_string())
    }
}

fn core_state_code(s: CoreState) -> u8 {
    match s {
        CoreState::Running => 0,
        CoreState::WaitingMem => 1,
        CoreState::Barrier => 2,
        CoreState::Halted => 3,
    }
}

fn core_state_from(code: u8) -> Result<CoreState, StateError> {
    Ok(match code {
        0 => CoreState::Running,
        1 => CoreState::WaitingMem,
        2 => CoreState::Barrier,
        3 => CoreState::Halted,
        _ => return Err(StateError::Invalid("core state")),
    })
}

fn op_kind_code(k: OpKind) -> u8 {
    match k {
        OpKind::Load => 0,
        OpKind::Store => 1,
        OpKind::Amo => 2,
        OpKind::Lr => 3,
        OpKind::Sc => 4,
        OpKind::LrWait => 5,
        OpKind::ScWait => 6,
        OpKind::MWait => 7,
        OpKind::WakeUp => 8,
    }
}

fn op_kind_from(code: u8) -> Result<OpKind, StateError> {
    Ok(match code {
        0 => OpKind::Load,
        1 => OpKind::Store,
        2 => OpKind::Amo,
        3 => OpKind::Lr,
        4 => OpKind::Sc,
        5 => OpKind::LrWait,
        6 => OpKind::ScWait,
        7 => OpKind::MWait,
        8 => OpKind::WakeUp,
        _ => return Err(StateError::Invalid("park kind")),
    })
}

fn mem_width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::Byte => 0,
        MemWidth::Half => 1,
        MemWidth::Word => 2,
    }
}

fn mem_width_from(code: u8) -> Result<MemWidth, StateError> {
    Ok(match code {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => return Err(StateError::Invalid("load width")),
    })
}

fn load_core(src: &mut StateReader<'_>, core: &mut Core) -> Result<(), StateError> {
    for r in core.regs.iter_mut() {
        *r = src.take_u32()?;
    }
    core.regs[0] = 0; // x0 is architectural zero whatever the buffer says
    core.pc = src.take_u32()?;
    core.state = core_state_from(src.take_u8()?)?;
    core.ready_at = src.take_u64()?;
    // Transient fast-path state, never serialized: the restored machine
    // has charged nothing beyond the snapshot cycle.
    core.charged_until = 0;
    core.parked_at = src.take_u64()?;
    core.pending = if src.take_bool()? {
        let rd = Reg::try_new(u32::from(src.take_u8()?))
            .ok_or(StateError::Invalid("pending destination register"))?;
        let addr = src.take_u32()?;
        let kind = match src.take_u8()? {
            0 => PendingKind::Load {
                width: mem_width_from(src.take_u8()?)?,
                signed: src.take_bool()?,
            },
            1 => PendingKind::Value,
            2 => PendingKind::Flag,
            _ => return Err(StateError::Invalid("pending operation kind")),
        };
        Some(PendingMem { rd, addr, kind })
    } else {
        None
    };
    core.outstanding_stores = src.take_u32()?;
    core.stats.instret = src.take_u64()?;
    core.stats.active_cycles = src.take_u64()?;
    core.stats.stall_cycles = src.take_u64()?;
    core.stats.sleep_cycles = src.take_u64()?;
    core.stats.barrier_cycles = src.take_u64()?;
    core.stats.ops = src.take_u64()?;
    core.stats.region_start = src.take_opt_u64()?;
    core.stats.region_end = src.take_opt_u64()?;
    Ok(())
}

fn save_req(out: &mut StateWriter, m: &ReqMsg) {
    out.put_u32(m.src);
    out.put_u32(m.bank);
    m.req.save(out);
}

fn load_req(
    src: &mut StateReader<'_>,
    num_cores: u32,
    num_banks: u32,
) -> Result<ReqMsg, StateError> {
    let src_core = src.take_u32()?;
    if src_core != HOST_CORE && src_core >= num_cores {
        return Err(StateError::Invalid("request source core"));
    }
    let bank = src.take_u32()?;
    if bank >= num_banks {
        return Err(StateError::Invalid("request destination bank"));
    }
    Ok(ReqMsg {
        src: src_core,
        bank,
        req: MemRequest::load(src)?,
    })
}

fn save_resp(out: &mut StateWriter, m: &RespMsg) {
    out.put_u32(m.core);
    m.resp.save(out);
}

fn load_resp(src: &mut StateReader<'_>, num_cores: u32) -> Result<RespMsg, StateError> {
    let core = src.take_u32()?;
    if core >= num_cores {
        return Err(StateError::Invalid("response destination core"));
    }
    Ok(RespMsg {
        core,
        resp: MemResponse::load(src)?,
    })
}

/// Serializes a network: statistics, then every in-flight flit in the
/// canonical (node id, queue position) order [`Network::for_each_flit`]
/// visits in — the same order [`Network::push_flit`] replays them in, so a
/// restored network is behaviourally identical.
fn save_net<P>(out: &mut StateWriter, net: &Network<P>, save: fn(&mut StateWriter, &P)) {
    let stats = net.stats();
    out.put_u64(stats.injected);
    out.put_u64(stats.inject_stalls);
    out.put_u64(stats.hops);
    out.put_u64(stats.delivered);
    out.put_u64(stats.hol_blocks);
    let mut count: u32 = 0;
    net.for_each_flit(|_, _, _, _| count += 1);
    out.put_u32(count);
    net.for_each_flit(|payload, route, hop, ready_at| {
        out.put_u8(route.len() as u8);
        for &h in route.hops() {
            out.put_u32(h);
        }
        out.put_u8(hop);
        out.put_u64(ready_at);
        save(out, payload);
    });
}

fn load_net<P>(
    src: &mut StateReader<'_>,
    net: &mut Network<P>,
    load: impl Fn(&mut StateReader<'_>) -> Result<P, StateError>,
) -> Result<(), StateError> {
    let stats = NetworkStats {
        injected: src.take_u64()?,
        inject_stalls: src.take_u64()?,
        hops: src.take_u64()?,
        delivered: src.take_u64()?,
        hol_blocks: src.take_u64()?,
    };
    net.clear_in_flight();
    net.set_stats(stats);
    let count = src.take_u32()?;
    for _ in 0..count {
        let len = usize::from(src.take_u8()?);
        if len == 0 || len > Route::MAX_HOPS {
            return Err(StateError::Invalid("flit route length"));
        }
        let mut hops = [0u32; Route::MAX_HOPS];
        for h in hops.iter_mut().take(len) {
            *h = src.take_u32()?;
            if *h as usize >= net.num_nodes() {
                return Err(StateError::Invalid("flit node id"));
            }
        }
        let hop = src.take_u8()?;
        if usize::from(hop) >= len {
            return Err(StateError::Invalid("flit hop index"));
        }
        let ready_at = src.take_u64()?;
        let payload = load(src)?;
        net.push_flit(Route::new(&hops[..len]), hop, ready_at, payload);
    }
    Ok(())
}

/// Merges the sorted, disjoint `add` list into the sorted `dst` list,
/// using `scratch` as the reusable merge buffer (allocation-free once
/// capacities are warm).
fn merge_sorted(dst: &mut Vec<u32>, add: &[u32], scratch: &mut Vec<u32>) {
    if add.is_empty() {
        return;
    }
    if dst.is_empty() {
        dst.extend_from_slice(add);
        return;
    }
    scratch.clear();
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < add.len() {
        if dst[i] <= add[j] {
            debug_assert_ne!(dst[i], add[j], "merge lists must be disjoint");
            scratch.push(dst[i]);
            i += 1;
        } else {
            scratch.push(add[j]);
            j += 1;
        }
    }
    scratch.extend_from_slice(&dst[i..]);
    scratch.extend_from_slice(&add[j..]);
    std::mem::swap(dst, scratch);
}
