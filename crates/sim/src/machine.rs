//! The manycore machine: cores + Qnodes + banks with synchronization
//! adapters, glued together by the two virtual networks.
//!
//! # Cycle order
//!
//! 1. Advance the request network; every delivered request is processed by
//!    its bank's [`SyncAdapter`] (one per cycle per bank, enforced by the
//!    bank node's rate), responses land in the bank's outbox.
//! 2. Flush bank outboxes into the response network (FIFO per bank, so the
//!    (bank → core) ordering Colibri relies on holds).
//! 3. Advance the response network; deliveries pass through the core's
//!    [`Qnode`] (which may swallow `SuccessorUpdate`s or emit `WakeUp`s) and
//!    complete the core's in-flight operation.
//! 4. Step every runnable core by one instruction; memory intents are
//!    resolved against MMIO (instant), ROM (instant) or the SPM (queued).
//! 5. Flush core outboxes into the request network (backpressure stalls
//!    the core).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use lrscwait_asm::Program;
use lrscwait_core::{
    AdapterStats, MemRequest, MemResponse, Qnode, RmwOp, SyncAdapter, WordStorage,
};
use lrscwait_isa::AmoOp;
use lrscwait_noc::{MempoolTopology, Network};

use crate::config::{mmio_reg, ConfigError, SimConfig, MMIO_BASE, MMIO_SIZE, NUM_ARGS, ROM_BASE};
use crate::cpu::{
    extract, store_lanes, Action, Core, CoreState, DecodedProgram, ExecError, MemIntent,
    PendingKind, PendingMem,
};
use crate::stats::{ExitReason, RunSummary, SimStats};

/// Fatal simulation error (software bug in a kernel or harness misuse).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Core fetched outside the program image.
    IllegalPc {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Misaligned access.
    Misaligned {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// Accessed address.
        addr: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Access to an unmapped or illegal address.
    Fault {
        /// Offending core.
        core: u32,
        /// Accessed address.
        addr: u32,
        /// What went wrong.
        what: &'static str,
    },
    /// The program text does not decode (corrupt image).
    BadProgram {
        /// Word index within the text segment.
        index: usize,
    },
    /// The program's data segment does not fit the configured SPM.
    ProgramTooLarge {
        /// Bytes of initialized data + bss the program needs.
        footprint: u32,
        /// Configured SPM size in bytes.
        spm_bytes: u32,
    },
    /// The configuration itself is inconsistent.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalPc { core, pc } => {
                write!(f, "core {core}: illegal pc {pc:#010x}")
            }
            SimError::Breakpoint { core, pc, line } => {
                write!(f, "core {core}: ebreak at {pc:#010x} (line {line:?})")
            }
            SimError::Misaligned {
                core,
                pc,
                addr,
                line,
            } => write!(
                f,
                "core {core}: misaligned access to {addr:#010x} at pc {pc:#010x} (line {line:?})"
            ),
            SimError::Fault { core, addr, what } => {
                write!(f, "core {core}: {what} at {addr:#010x}")
            }
            SimError::BadProgram { index } => {
                write!(f, "text word {index} does not decode")
            }
            SimError::ProgramTooLarge {
                footprint,
                spm_bytes,
            } => {
                write!(
                    f,
                    "program data ({footprint} B) exceeds SPM ({spm_bytes} B)"
                )
            }
            SimError::Config(ref e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

/// Request-network payload.
#[derive(Clone, Copy, Debug)]
struct ReqMsg {
    src: u32,
    bank: u32,
    req: MemRequest,
}

/// Response-network payload.
#[derive(Clone, Copy, Debug)]
struct RespMsg {
    core: u32,
    resp: MemResponse,
}

/// Adapter-facing view of one bank's storage with global addressing.
struct BankView<'a> {
    words: &'a mut [u32],
    num_banks: u32,
    bank: u32,
}

impl WordStorage for BankView<'_> {
    fn read_word(&self, addr: u32) -> u32 {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize]
    }

    fn write_word(&mut self, addr: u32, value: u32) {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize] = value;
    }
}

/// The simulated manycore system.
pub struct Machine {
    cfg: SimConfig,
    topo: MempoolTopology,
    program: DecodedProgram,
    cores: Vec<Core>,
    qnodes: Vec<Qnode>,
    adapters: Vec<Box<dyn SyncAdapter>>,
    banks: Vec<Vec<u32>>,
    req_net: Network<ReqMsg>,
    resp_net: Network<RespMsg>,
    core_outbox: Vec<VecDeque<ReqMsg>>,
    bank_outbox: Vec<VecDeque<RespMsg>>,
    dirty_banks: Vec<u32>,
    cycle: u64,
    halted: usize,
    barrier_waiting: usize,
    debug_log: Vec<(u64, u32, u32)>,
    // Scratch buffers (allocation-free steady state).
    req_buf: Vec<ReqMsg>,
    resp_buf: Vec<RespMsg>,
    adapter_out: Vec<(u32, MemResponse)>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("banks", &self.banks.len())
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .finish()
    }
}

impl Machine {
    /// Builds a machine and loads `program` (text into ROM, data into SPM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] when a text word does not decode,
    /// [`SimError::ProgramTooLarge`] when the data image exceeds the SPM,
    /// and [`SimError::Config`] when the configuration is inconsistent
    /// (see [`SimConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics when the program's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn new(cfg: SimConfig, program: &Program) -> Result<Machine, SimError> {
        assert_eq!(
            program.text_base, ROM_BASE,
            "assemble kernels with the default text base"
        );
        cfg.validate()?;
        let mut instrs = Vec::with_capacity(program.text.len());
        for (index, &word) in program.text.iter().enumerate() {
            match lrscwait_isa::decode(word) {
                Ok(i) => instrs.push(i),
                Err(_) => return Err(SimError::BadProgram { index }),
            }
        }
        let decoded = DecodedProgram {
            base: program.text_base,
            instrs,
            raw: program.text.clone(),
            source_lines: program.source_lines.clone(),
        };
        let topo = MempoolTopology::new(cfg.topology);
        let num_cores = cfg.topology.num_cores;
        let num_banks = cfg.topology.num_banks();
        let words_per_bank = cfg.words_per_bank();
        let footprint = program.bss_base + program.bss_size;
        if footprint > cfg.spm_bytes {
            return Err(SimError::ProgramTooLarge {
                footprint,
                spm_bytes: cfg.spm_bytes,
            });
        }

        let mut machine = Machine {
            topo,
            program: decoded,
            cores: (0..num_cores as u32)
                .map(|id| Core::new(id, program.entry))
                .collect(),
            qnodes: vec![Qnode::new(); num_cores],
            adapters: (0..num_banks).map(|_| cfg.arch.build(num_cores)).collect(),
            banks: vec![vec![0u32; words_per_bank]; num_banks],
            req_net: MempoolTopology::new(cfg.topology).build_request_network(),
            resp_net: MempoolTopology::new(cfg.topology).build_response_network(),
            core_outbox: vec![VecDeque::new(); num_cores],
            bank_outbox: vec![VecDeque::new(); num_banks],
            dirty_banks: Vec::new(),
            cycle: 0,
            halted: 0,
            barrier_waiting: 0,
            debug_log: Vec::new(),
            req_buf: Vec::new(),
            resp_buf: Vec::new(),
            adapter_out: Vec::new(),
            cfg,
        };

        // Load the initialized data image.
        for (i, chunk) in program.data.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            machine.write_word(program.data_base + 4 * i as u32, u32::from_le_bytes(word));
        }
        Ok(machine)
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Values written to the MMIO PRINT register: `(cycle, core, value)`.
    #[must_use]
    pub fn debug_log(&self) -> &[(u64, u32, u32)] {
        &self.debug_log
    }

    /// Bank holding the word at `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.banks.len() as u32
    }

    /// Host read of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        assert!(addr < self.cfg.spm_bytes, "host read outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize]
    }

    /// Host write of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        assert!(addr < self.cfg.spm_bytes, "host write outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize] = value;
    }

    /// Gathers current statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut adapters = AdapterStats::default();
        for a in &self.adapters {
            let s = a.stats();
            adapters.requests += s.requests;
            adapters.loads += s.loads;
            adapters.stores += s.stores;
            adapters.amos += s.amos;
            adapters.sc_success += s.sc_success;
            adapters.sc_failure += s.sc_failure;
            adapters.wait_enqueued += s.wait_enqueued;
            adapters.wait_failfast += s.wait_failfast;
            adapters.scwait_success += s.scwait_success;
            adapters.scwait_failure += s.scwait_failure;
            adapters.successor_updates += s.successor_updates;
            adapters.wakeups += s.wakeups;
            adapters.reservations_broken += s.reservations_broken;
        }
        SimStats {
            cores: self.cores.iter().map(|c| c.stats).collect(),
            req_network: self.req_net.stats(),
            resp_network: self.resp_net.stats(),
            adapters,
        }
    }

    /// Runs until every core halts or the watchdog fires.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs (illegal pc, misalignment,
    /// breakpoints, faults).
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        while self.halted < self.cores.len() {
            if self.cycle >= self.cfg.max_cycles {
                return Ok(RunSummary {
                    cycles: self.cycle,
                    exit: ExitReason::Watchdog,
                });
            }
            self.step_cycle()?;
        }
        Ok(RunSummary {
            cycles: self.cycle,
            exit: ExitReason::AllHalted,
        })
    }

    /// Advances the machine by exactly one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        let now = self.cycle;

        // Phase 1: requests reach banks.
        let mut req_buf = std::mem::take(&mut self.req_buf);
        req_buf.clear();
        self.req_net.advance(now, &mut req_buf);
        for msg in &req_buf {
            let bank = msg.bank as usize;
            let mut view = BankView {
                words: &mut self.banks[bank],
                num_banks: self.cfg.topology.num_banks() as u32,
                bank: msg.bank,
            };
            let mut out = std::mem::take(&mut self.adapter_out);
            out.clear();
            self.adapters[bank].handle(msg.src, &msg.req, &mut view, &mut out);
            if self.bank_outbox[bank].is_empty() && !out.is_empty() {
                self.dirty_banks.push(msg.bank);
            }
            for (core, resp) in out.drain(..) {
                self.bank_outbox[bank].push_back(RespMsg { core, resp });
            }
            self.adapter_out = out;
        }
        self.req_buf = req_buf;

        // Phase 2: flush bank outboxes into the response network.
        if !self.dirty_banks.is_empty() {
            let mut still_dirty = Vec::new();
            let dirty = std::mem::take(&mut self.dirty_banks);
            for bank in dirty {
                while let Some(&msg) = self.bank_outbox[bank as usize].front() {
                    let route = self.topo.response_route(bank as usize, msg.core as usize);
                    match self.resp_net.try_send(route, msg, now) {
                        Ok(()) => {
                            self.bank_outbox[bank as usize].pop_front();
                        }
                        Err(_) => break,
                    }
                }
                if !self.bank_outbox[bank as usize].is_empty() {
                    still_dirty.push(bank);
                }
            }
            self.dirty_banks = still_dirty;
        }

        // Phase 3: responses reach cores (through their Qnodes).
        let mut resp_buf = std::mem::take(&mut self.resp_buf);
        resp_buf.clear();
        self.resp_net.advance(now, &mut resp_buf);
        for msg in &resp_buf {
            let c = msg.core as usize;
            let output = self.qnodes[c].on_response(msg.resp);
            if let Some(delivered) = output.deliver {
                self.complete_response(c, delivered, now);
            }
            if let Some(wakeup) = output.wakeup {
                let bank = self.bank_of(wakeup.addr());
                self.core_outbox[c].push_back(ReqMsg {
                    src: msg.core,
                    bank,
                    req: wakeup,
                });
            }
        }
        self.resp_buf = resp_buf;

        // Phase 4: step cores.
        for c in 0..self.cores.len() {
            self.step_core(c, now)?;
        }

        // Phase 5: flush core outboxes into the request network. The start
        // index rotates each cycle so no core gets static injection
        // priority (round-robin arbitration, as in the real fabric).
        let n = self.cores.len();
        let start = (now as usize) % n;
        for i in 0..n {
            let c = (start + i) % n;
            while let Some(&msg) = self.core_outbox[c].front() {
                let route = self.topo.request_route(c, msg.bank as usize);
                match self.req_net.try_send(route, msg, now) {
                    Ok(()) => {
                        self.core_outbox[c].pop_front();
                    }
                    Err(_) => break,
                }
            }
        }
        Ok(())
    }

    fn complete_response(&mut self, c: usize, resp: MemResponse, now: u64) {
        match resp {
            MemResponse::StoreAck => {
                debug_assert!(self.cores[c].outstanding_stores > 0);
                self.cores[c].outstanding_stores -= 1;
            }
            MemResponse::Load { value }
            | MemResponse::Amo { old: value }
            | MemResponse::Lr { value }
            | MemResponse::Wait { value, .. } => {
                self.cores[c].complete(value, now);
            }
            MemResponse::Sc { success } | MemResponse::ScWait { success } => {
                self.cores[c].complete(u32::from(!success), now);
            }
            MemResponse::SuccessorUpdate { .. } => {
                unreachable!("SuccessorUpdate must be consumed by the Qnode")
            }
        }
    }

    fn line_of(&self, pc: u32) -> Option<u32> {
        self.program
            .index_of(pc)
            .and_then(|i| self.program.source_lines.get(i).copied())
    }

    fn step_core(&mut self, c: usize, now: u64) -> Result<(), SimError> {
        match self.cores[c].state {
            CoreState::Halted => return Ok(()),
            CoreState::Barrier => {
                self.cores[c].stats.barrier_cycles += 1;
                return Ok(());
            }
            CoreState::WaitingMem => {
                self.cores[c].stats.sleep_cycles += 1;
                return Ok(());
            }
            CoreState::Running => {}
        }
        self.cores[c].stats.active_cycles += 1;
        if now < self.cores[c].ready_at || self.core_outbox[c].len() >= 4 {
            return Ok(());
        }
        let action = {
            let program = &self.program;
            let timing = self.cfg.timing;
            self.cores[c].execute(program, now, &timing)
        };
        let action = match action {
            Ok(a) => a,
            Err(ExecError::IllegalPc(pc)) => {
                return Err(SimError::IllegalPc { core: c as u32, pc })
            }
            Err(ExecError::Breakpoint(pc)) => {
                return Err(SimError::Breakpoint {
                    core: c as u32,
                    pc,
                    line: self.line_of(pc),
                })
            }
            Err(ExecError::Misaligned { pc, addr }) => {
                return Err(SimError::Misaligned {
                    core: c as u32,
                    pc,
                    addr,
                    line: self.line_of(pc),
                })
            }
        };
        match action {
            Action::Done => Ok(()),
            Action::Halt => {
                self.halt_core(c, now);
                Ok(())
            }
            Action::Mem(intent) => self.apply_intent(c, intent, now),
        }
    }

    fn halt_core(&mut self, c: usize, now: u64) {
        if self.cores[c].state != CoreState::Halted {
            self.cores[c].state = CoreState::Halted;
            self.halted += 1;
            self.release_barrier_if_ready(now);
        }
    }

    fn release_barrier_if_ready(&mut self, now: u64) {
        let running = self.cores.len() - self.halted;
        if running > 0 && self.barrier_waiting == running {
            for core in &mut self.cores {
                if core.state == CoreState::Barrier {
                    core.state = CoreState::Running;
                    core.ready_at = now + 1;
                }
            }
            self.barrier_waiting = 0;
        }
    }

    fn apply_intent(&mut self, c: usize, intent: MemIntent, now: u64) -> Result<(), SimError> {
        match intent {
            MemIntent::Fence => {
                if self.cores[c].outstanding_stores == 0 && self.core_outbox[c].is_empty() {
                    self.cores[c].pc += 4;
                }
                // Otherwise: retry next cycle (fence stalls the pipeline).
                Ok(())
            }
            MemIntent::Load {
                addr,
                rd,
                width,
                signed,
            } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    let value = self.mmio_read(c, addr - MMIO_BASE);
                    self.cores[c].set_reg(rd, extract(value, addr, width, signed));
                    self.cores[c].pc += 4;
                    return Ok(());
                }
                if addr >= ROM_BASE {
                    let idx = ((addr - ROM_BASE) / 4) as usize;
                    let Some(&word) = self.program.raw.get(idx) else {
                        return Err(SimError::Fault {
                            core: c as u32,
                            addr,
                            what: "load beyond ROM",
                        });
                    };
                    self.cores[c].set_reg(rd, extract(word, addr, width, signed));
                    self.cores[c].pc += 4;
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "load outside SPM",
                    });
                }
                self.cores[c].pending = Some(PendingMem {
                    rd,
                    addr,
                    kind: PendingKind::Load { width, signed },
                });
                self.cores[c].state = CoreState::WaitingMem;
                self.cores[c].pc += 4;
                self.push_request(c, MemRequest::Load { addr: addr & !3 });
                Ok(())
            }
            MemIntent::Store { addr, value, width } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    self.cores[c].pc += 4;
                    self.mmio_write(c, addr - MMIO_BASE, value, now);
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "store outside SPM (ROM is read-only)",
                    });
                }
                if self.cores[c].outstanding_stores >= self.cfg.timing.store_buffer {
                    return Ok(()); // buffer full: stall, retry next cycle
                }
                let (aligned, lane_value, mask) = store_lanes(addr, value, width);
                self.cores[c].outstanding_stores += 1;
                self.cores[c].pc += 4;
                self.push_request(
                    c,
                    MemRequest::Store {
                        addr: aligned,
                        value: lane_value,
                        mask,
                    },
                );
                Ok(())
            }
            MemIntent::Atomic {
                addr,
                rd,
                op,
                operand,
            } => {
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "atomic outside SPM",
                    });
                }
                let (req, kind) = match op {
                    AmoOp::Lr => (MemRequest::Lr { addr }, PendingKind::Value),
                    AmoOp::Sc => (
                        MemRequest::Sc {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::LrWait => (MemRequest::LrWait { addr }, PendingKind::Value),
                    AmoOp::ScWait => (
                        MemRequest::ScWait {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::MWait => (
                        MemRequest::MWait {
                            addr,
                            expected: operand,
                        },
                        PendingKind::Value,
                    ),
                    rmw => (
                        MemRequest::Amo {
                            addr,
                            op: map_rmw(rmw),
                            operand,
                        },
                        PendingKind::Value,
                    ),
                };
                self.cores[c].pending = Some(PendingMem { rd, addr, kind });
                self.cores[c].state = CoreState::WaitingMem;
                self.cores[c].pc += 4;
                self.push_request(c, req);
                Ok(())
            }
        }
    }

    fn push_request(&mut self, c: usize, req: MemRequest) {
        let wakeup = self.qnodes[c].on_core_request(&req);
        let bank = self.bank_of(req.addr());
        self.core_outbox[c].push_back(ReqMsg {
            src: c as u32,
            bank,
            req,
        });
        if let Some(wk) = wakeup {
            let wk_bank = self.bank_of(wk.addr());
            self.core_outbox[c].push_back(ReqMsg {
                src: c as u32,
                bank: wk_bank,
                req: wk,
            });
        }
    }

    fn mmio_read(&self, c: usize, offset: u32) -> u32 {
        match offset {
            mmio_reg::HARTID => c as u32,
            mmio_reg::NUM_CORES => self.cores.len() as u32,
            o if (mmio_reg::ARG0..mmio_reg::ARG0 + 4 * NUM_ARGS as u32).contains(&o)
                && o % 4 == 0 =>
            {
                self.cfg.args[((o - mmio_reg::ARG0) / 4) as usize]
            }
            _ => 0,
        }
    }

    fn mmio_write(&mut self, c: usize, offset: u32, value: u32, now: u64) {
        match offset {
            mmio_reg::EXIT => self.halt_core(c, now),
            mmio_reg::OP_COUNT => self.cores[c].stats.ops += u64::from(value),
            mmio_reg::REGION => {
                if value != 0 {
                    if self.cores[c].stats.region_start.is_none() {
                        self.cores[c].stats.region_start = Some(now);
                    }
                } else {
                    self.cores[c].stats.region_end = Some(now);
                }
            }
            mmio_reg::BARRIER => {
                self.cores[c].state = CoreState::Barrier;
                self.barrier_waiting += 1;
                self.release_barrier_if_ready(now);
            }
            mmio_reg::PRINT => self.debug_log.push((now, c as u32, value)),
            _ => {}
        }
    }
}

fn map_rmw(op: AmoOp) -> RmwOp {
    match op {
        AmoOp::Swap => RmwOp::Swap,
        AmoOp::Add => RmwOp::Add,
        AmoOp::Xor => RmwOp::Xor,
        AmoOp::And => RmwOp::And,
        AmoOp::Or => RmwOp::Or,
        AmoOp::Min => RmwOp::Min,
        AmoOp::Max => RmwOp::Max,
        AmoOp::Minu => RmwOp::Minu,
        AmoOp::Maxu => RmwOp::Maxu,
        other => unreachable!("{other:?} is not an RMW AMO"),
    }
}
