//! The manycore machine: cores + Qnodes + banks with synchronization
//! adapters, glued together by the two virtual networks.
//!
//! # Cycle order
//!
//! 1. Advance the request network; every delivered request is processed by
//!    its bank's [`SyncAdapter`] (one per cycle per bank, enforced by the
//!    bank node's rate), responses land in the bank's outbox.
//! 2. Flush bank outboxes into the response network (FIFO per bank, so the
//!    (bank → core) ordering Colibri relies on holds).
//! 3. Advance the response network; deliveries pass through the core's
//!    [`Qnode`] (which may swallow `SuccessorUpdate`s or emit `WakeUp`s) and
//!    complete the core's in-flight operation.
//! 4. Step every runnable core by one instruction; memory intents are
//!    resolved against MMIO (instant), ROM (instant) or the SPM (queued).
//! 5. Flush core outboxes into the request network (backpressure stalls
//!    the core).
//!
//! # Event-driven scheduling
//!
//! The paper's whole point is that LRSCwait cores *sleep* instead of
//! polling, so in the interesting regimes almost every core is parked in a
//! wait queue or at the barrier. The default execution mode
//! ([`ExecMode::EventDriven`]) makes the simulator's cost track *events*
//! instead of `cores × cycles`:
//!
//! * **Runnable set.** Phase 4 walks an always-sorted list of the cores in
//!   [`CoreState::Running`]. Cores leave it when they halt, park at the
//!   barrier, or block on memory, and re-enter on response delivery or
//!   barrier release — a parked core costs zero work per cycle.
//! * **Lazy parked accounting.** Sleep/barrier cycle counters are settled
//!   as one `now − parked_at` delta on wake (and flushed on
//!   [`Machine::stats`]) instead of one increment per parked cycle.
//! * **Cycle fast-forwarding.** Between cycles, [`Machine::run`] asks both
//!   networks for their [`next_ready_at`](Network::next_ready_at) and the
//!   runnable cores for their earliest `ready_at`; when the next event is
//!   more than one cycle away (and no outbox holds backpressured traffic),
//!   the cycle counter jumps straight to it. Long all-asleep phases — the
//!   common case under LRSCwait — cost O(events), and an all-parked
//!   deadlock jumps directly to the watchdog.
//! * **Allocation-free hot loops.** Every per-cycle scratch buffer
//!   (message buffers, dirty-bank/dirty-core lists, the runnable set and
//!   its merge scratch, the networks' scan sets) is reused; steady-state
//!   cycles perform zero heap allocations.
//!
//! # Equivalence guarantee
//!
//! Event-driven execution is an *optimization, not a model change*: cycle
//! counts, every statistic, and therefore every benchmark CSV byte are
//! identical to the naive reference stepper ([`ExecMode::Reference`]),
//! which visits all cores every cycle with eager per-cycle accounting.
//! The differential test suite (`crates/sim/tests/differential.rs` and the
//! workspace-level `tests/differential.rs`) runs both modes across the
//! kernel × architecture matrix and asserts bit-identical
//! [`RunSummary`]/[`SimStats`] and byte-identical sweep CSVs. The one
//! subtlety is barrier release order: within the releasing cycle the
//! reference charges a barrier cycle to parked cores the Phase 4 scan
//! visits *before* the releasing core and a stall cycle to those *after*
//! it; the event-driven path reproduces this positionally by comparing
//! core indices at release time.
//!
//! # Tracing
//!
//! [`Machine::set_tracer`] attaches a `lrscwait-trace` sink that observes
//! the run as structured events: core park/wake with cause, barrier
//! arrivals and releases, measured-region markers, request issue, the
//! bank adapters' synchronization events and the networks' transport
//! events. Tracing is an *observer, never a steering input*: results are
//! bit-identical with and without a sink, and the event stream itself is
//! identical across execution modes (enforced by
//! `crates/sim/tests/tracing.rs`). With no sink attached — the default —
//! each emit site is a single predictable branch and the event is never
//! constructed, so the alloc-free, O(events) hot path is unchanged.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use lrscwait_asm::Program;
use lrscwait_core::{
    AdapterStats, MemRequest, MemResponse, Qnode, RmwOp, SyncAdapter, WordStorage,
};
use lrscwait_isa::AmoOp;
use lrscwait_noc::{MempoolTopology, Network};

use lrscwait_trace::{NetDir, OpKind, TraceEvent, TraceSink, Tracer, WakeCause};

use crate::config::{
    mmio_reg, ConfigError, ExecMode, SimConfig, MMIO_BASE, MMIO_SIZE, NUM_ARGS, ROM_BASE,
};
use crate::cpu::{
    amo_op_kind, extract, store_lanes, Action, Core, CoreState, DecodedProgram, ExecError,
    MemIntent, PendingKind, PendingMem,
};
use crate::stats::{ExitReason, RunSummary, SimStats};

/// Fatal simulation error (software bug in a kernel or harness misuse).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Core fetched outside the program image.
    IllegalPc {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Misaligned access.
    Misaligned {
        /// Offending core.
        core: u32,
        /// Program counter value.
        pc: u32,
        /// Accessed address.
        addr: u32,
        /// 1-based source line, when known.
        line: Option<u32>,
    },
    /// Access to an unmapped or illegal address.
    Fault {
        /// Offending core.
        core: u32,
        /// Accessed address.
        addr: u32,
        /// What went wrong.
        what: &'static str,
    },
    /// The program text does not decode (corrupt image).
    BadProgram {
        /// Word index within the text segment.
        index: usize,
    },
    /// The program's data segment does not fit the configured SPM.
    ProgramTooLarge {
        /// Bytes of initialized data + bss the program needs.
        footprint: u32,
        /// Configured SPM size in bytes.
        spm_bytes: u32,
    },
    /// The configuration itself is inconsistent.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalPc { core, pc } => {
                write!(f, "core {core}: illegal pc {pc:#010x}")
            }
            SimError::Breakpoint { core, pc, line } => {
                write!(f, "core {core}: ebreak at {pc:#010x} (line {line:?})")
            }
            SimError::Misaligned {
                core,
                pc,
                addr,
                line,
            } => write!(
                f,
                "core {core}: misaligned access to {addr:#010x} at pc {pc:#010x} (line {line:?})"
            ),
            SimError::Fault { core, addr, what } => {
                write!(f, "core {core}: {what} at {addr:#010x}")
            }
            SimError::BadProgram { index } => {
                write!(f, "text word {index} does not decode")
            }
            SimError::ProgramTooLarge {
                footprint,
                spm_bytes,
            } => {
                write!(
                    f,
                    "program data ({footprint} B) exceeds SPM ({spm_bytes} B)"
                )
            }
            SimError::Config(ref e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

/// Request-network payload.
#[derive(Clone, Copy, Debug)]
struct ReqMsg {
    src: u32,
    bank: u32,
    req: MemRequest,
}

/// Response-network payload.
#[derive(Clone, Copy, Debug)]
struct RespMsg {
    core: u32,
    resp: MemResponse,
}

/// Adapter-facing view of one bank's storage with global addressing.
struct BankView<'a> {
    words: &'a mut [u32],
    num_banks: u32,
    bank: u32,
}

impl WordStorage for BankView<'_> {
    fn read_word(&self, addr: u32) -> u32 {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize]
    }

    fn write_word(&mut self, addr: u32, value: u32) {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize] = value;
    }
}

/// The simulated manycore system.
pub struct Machine {
    cfg: SimConfig,
    topo: MempoolTopology,
    program: Arc<DecodedProgram>,
    cores: Vec<Core>,
    qnodes: Vec<Qnode>,
    adapters: Vec<Box<dyn SyncAdapter>>,
    banks: Vec<Vec<u32>>,
    req_net: Network<ReqMsg>,
    resp_net: Network<RespMsg>,
    core_outbox: Vec<VecDeque<ReqMsg>>,
    bank_outbox: Vec<VecDeque<RespMsg>>,
    dirty_banks: Vec<u32>,
    cycle: u64,
    halted: usize,
    barrier_waiting: usize,
    debug_log: Vec<(u64, u32, u32)>,
    /// Tracing switch: [`Tracer::Off`] by default, in which case every
    /// emit site is a single predictable branch and results are
    /// bit-identical to a sink-attached run (tracing observes, it never
    /// steers).
    tracer: Tracer,
    /// Per-core blocking-operation kind (only maintained while tracing;
    /// gives [`TraceEvent::Wake`] its cause).
    park_kind: Vec<OpKind>,
    /// Cores in `Running` state, sorted ascending (event-driven Phase 4).
    runnable: Vec<u32>,
    /// Cores that became `Running` outside the Phase 4 walk (response
    /// deliveries, barrier releases), merged into `runnable` next walk.
    pending_wake: Vec<u32>,
    /// Cores with a non-empty request outbox, sorted ascending
    /// (event-driven Phase 5).
    dirty_cores: Vec<u32>,
    // Scratch buffers (allocation-free steady state).
    req_buf: Vec<ReqMsg>,
    resp_buf: Vec<RespMsg>,
    adapter_out: Vec<(u32, MemResponse)>,
    bank_scratch: Vec<u32>,
    core_scratch: Vec<u32>,
    merge_scratch: Vec<u32>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("banks", &self.banks.len())
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .finish()
    }
}

impl Machine {
    /// Builds a machine and loads `program` (text into ROM, data into SPM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] when a text word does not decode,
    /// [`SimError::ProgramTooLarge`] when the data image exceeds the SPM,
    /// and [`SimError::Config`] when the configuration is inconsistent
    /// (see [`SimConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics when the program's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn new(cfg: SimConfig, program: &Program) -> Result<Machine, SimError> {
        Machine::with_decoded(cfg, Machine::decode(program)?)
    }

    /// Decodes a program into an image shareable across machines.
    ///
    /// Sweep runners decode each distinct program once and hand the same
    /// [`Arc`] to every worker via [`Machine::with_decoded`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] when a text word does not decode.
    ///
    /// # Panics
    ///
    /// Panics when the program's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn decode(program: &Program) -> Result<Arc<DecodedProgram>, SimError> {
        assert_eq!(
            program.text_base, ROM_BASE,
            "assemble kernels with the default text base"
        );
        DecodedProgram::from_program(program)
            .map(Arc::new)
            .map_err(|index| SimError::BadProgram { index })
    }

    /// Builds a machine around an already-decoded (possibly shared)
    /// program image.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProgramTooLarge`] when the data image exceeds
    /// the SPM and [`SimError::Config`] when the configuration is
    /// inconsistent (see [`SimConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics when the image's text base does not match [`ROM_BASE`]
    /// (a harness bug, not an input error).
    pub fn with_decoded(cfg: SimConfig, program: Arc<DecodedProgram>) -> Result<Machine, SimError> {
        assert_eq!(
            program.base, ROM_BASE,
            "assemble kernels with the default text base"
        );
        cfg.validate()?;
        let topo = MempoolTopology::new(cfg.topology);
        let num_cores = cfg.topology.num_cores;
        let num_banks = cfg.topology.num_banks();
        let words_per_bank = cfg.words_per_bank();
        let footprint = program.bss_base + program.bss_size;
        if footprint > cfg.spm_bytes {
            return Err(SimError::ProgramTooLarge {
                footprint,
                spm_bytes: cfg.spm_bytes,
            });
        }

        let entry = program.entry;
        let mut machine = Machine {
            topo,
            program: Arc::clone(&program),
            cores: (0..num_cores as u32)
                .map(|id| Core::new(id, entry))
                .collect(),
            qnodes: vec![Qnode::new(); num_cores],
            adapters: (0..num_banks).map(|_| cfg.arch.build(num_cores)).collect(),
            banks: vec![vec![0u32; words_per_bank]; num_banks],
            req_net: MempoolTopology::new(cfg.topology).build_request_network(),
            resp_net: MempoolTopology::new(cfg.topology).build_response_network(),
            core_outbox: vec![VecDeque::new(); num_cores],
            bank_outbox: vec![VecDeque::new(); num_banks],
            dirty_banks: Vec::new(),
            cycle: 0,
            halted: 0,
            barrier_waiting: 0,
            debug_log: Vec::new(),
            tracer: Tracer::Off,
            park_kind: vec![OpKind::Load; num_cores],
            runnable: (0..num_cores as u32).collect(),
            pending_wake: Vec::with_capacity(num_cores),
            dirty_cores: Vec::with_capacity(num_cores),
            req_buf: Vec::new(),
            resp_buf: Vec::new(),
            adapter_out: Vec::new(),
            bank_scratch: Vec::with_capacity(num_banks),
            core_scratch: Vec::with_capacity(num_cores),
            merge_scratch: Vec::with_capacity(num_cores),
            cfg,
        };

        // Load the initialized data image.
        for (i, chunk) in program.data.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            machine.write_word(program.data_base + 4 * i as u32, u32::from_le_bytes(word));
        }
        Ok(machine)
    }

    /// The active execution mode, fixed at construction by
    /// [`SimConfig::exec_mode`] (select it through
    /// [`crate::SimConfigBuilder::exec_mode`]).
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    /// Attaches a trace sink. Must be called before the first cycle so
    /// the sink observes a complete run. Emits
    /// [`TraceEvent::Start`] immediately with the machine geometry.
    ///
    /// Tracing never perturbs simulation: cycle counts, statistics and
    /// memory contents are bit-identical with and without a sink (the
    /// sink only observes). With no sink attached (the default) every
    /// emit site reduces to one predictable branch and the event is
    /// never constructed — the differential and counting-allocator
    /// suites run untraced and prove the hot path unchanged.
    ///
    /// To read results back after [`Machine::run`], hand in a
    /// [`lrscwait_trace::SharedSink`] clone and keep the other handle.
    ///
    /// # Panics
    ///
    /// Panics when the machine has already been stepped.
    pub fn set_tracer(&mut self, sink: Box<dyn TraceSink>) {
        assert_eq!(self.cycle, 0, "attach the trace sink before running");
        self.tracer = Tracer::sink(sink);
        let cores = self.cores.len() as u32;
        let banks = self.banks.len() as u32;
        self.tracer.emit(0, || TraceEvent::Start { cores, banks });
    }

    /// Whether a trace sink is attached.
    #[must_use]
    pub fn tracing(&self) -> bool {
        !self.tracer.is_off()
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Values written to the MMIO PRINT register: `(cycle, core, value)`.
    #[must_use]
    pub fn debug_log(&self) -> &[(u64, u32, u32)] {
        &self.debug_log
    }

    /// Bank holding the word at `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.banks.len() as u32
    }

    /// Host read of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        assert!(addr < self.cfg.spm_bytes, "host read outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize]
    }

    /// Host write of an SPM word.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is outside the SPM.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        assert!(addr < self.cfg.spm_bytes, "host write outside SPM");
        let w = addr / 4;
        let nb = self.banks.len() as u32;
        self.banks[(w % nb) as usize][(w / nb) as usize] = value;
    }

    /// Gathers current statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut adapters = AdapterStats::default();
        for a in &self.adapters {
            let s = a.stats();
            adapters.requests += s.requests;
            adapters.loads += s.loads;
            adapters.stores += s.stores;
            adapters.amos += s.amos;
            adapters.sc_success += s.sc_success;
            adapters.sc_failure += s.sc_failure;
            adapters.wait_enqueued += s.wait_enqueued;
            adapters.wait_failfast += s.wait_failfast;
            adapters.scwait_success += s.scwait_success;
            adapters.scwait_failure += s.scwait_failure;
            adapters.successor_updates += s.successor_updates;
            adapters.wakeups += s.wakeups;
            adapters.reservations_broken += s.reservations_broken;
        }
        let lazy = self.cfg.exec_mode == ExecMode::EventDriven;
        SimStats {
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let mut stats = c.stats;
                    if lazy {
                        // Flush the deferred parked-cycle delta for cores
                        // still asleep: the reference would have counted
                        // one cycle per Phase 4 visit since parking.
                        match c.state {
                            CoreState::WaitingMem => {
                                stats.sleep_cycles += self.cycle - c.parked_at;
                            }
                            CoreState::Barrier => {
                                stats.barrier_cycles += self.cycle - c.parked_at;
                            }
                            CoreState::Running | CoreState::Halted => {}
                        }
                    }
                    stats
                })
                .collect(),
            req_network: self.req_net.stats(),
            resp_network: self.resp_net.stats(),
            adapters,
        }
    }

    /// Runs until every core halts or the watchdog fires.
    ///
    /// In [`ExecMode::EventDriven`] mode, cycles in which provably nothing
    /// can happen — every runnable core is pipeline-stalled, the outboxes
    /// are drained, and no network flit becomes movable — are skipped by
    /// jumping the cycle counter straight to the next event (or to the
    /// watchdog limit, whichever comes first). Skipped stall cycles are
    /// credited in bulk so statistics stay bit-identical to stepping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs (illegal pc, misalignment,
    /// breakpoints, faults).
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        while self.halted < self.cores.len() {
            if self.cfg.exec_mode == ExecMode::EventDriven {
                self.fast_forward();
            }
            if self.cycle >= self.cfg.max_cycles {
                return Ok(RunSummary {
                    cycles: self.cycle,
                    exit: ExitReason::Watchdog,
                });
            }
            self.step_cycle()?;
        }
        Ok(RunSummary {
            cycles: self.cycle,
            exit: ExitReason::AllHalted,
        })
    }

    /// Jumps `cycle` to just before the next event when the machine is
    /// provably idle until then.
    ///
    /// A cycle can only be skipped when stepping it would change nothing:
    /// no outbox holds traffic (pending injections touch network
    /// statistics every cycle), every runnable core still waits on
    /// `ready_at`, and no flit in either network becomes movable. The one
    /// observable effect of such a cycle — a stall tick per runnable core
    /// — is credited in bulk.
    fn fast_forward(&mut self) {
        if !self.dirty_banks.is_empty() || !self.dirty_cores.is_empty() {
            return;
        }
        let now = self.cycle;
        let horizon = now + 1;
        let mut next = u64::MAX;
        // Cheapest scan first, bailing as soon as the very next cycle is
        // known to have work: compute-bound phases (every core issuing
        // with ready_at == now + 1) exit on the first core and never pay
        // the network scans.
        for &c in &self.runnable {
            let ready_at = self.cores[c as usize].ready_at;
            if ready_at <= horizon {
                return;
            }
            next = next.min(ready_at);
        }
        if let Some(t) = self.req_net.next_ready_at() {
            if t <= horizon {
                return;
            }
            next = next.min(t);
        }
        if let Some(t) = self.resp_net.next_ready_at() {
            if t <= horizon {
                return;
            }
            next = next.min(t);
        }
        debug_assert!(next > horizon);
        // `next == u64::MAX` means no event can ever occur (all-parked
        // deadlock): jump straight to the watchdog.
        let target = (next - 1).min(self.cfg.max_cycles);
        if target <= now {
            return;
        }
        let skipped = target - now;
        for i in 0..self.runnable.len() {
            let c = self.runnable[i] as usize;
            self.cores[c].stats.stall_cycles += skipped;
        }
        self.cycle = target;
    }

    /// Advances the machine by exactly one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on kernel bugs.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        let now = self.cycle;

        // Phase 1: requests reach banks.
        let mut req_buf = std::mem::take(&mut self.req_buf);
        req_buf.clear();
        if self.tracer.is_off() {
            self.req_net.advance(now, &mut req_buf);
        } else {
            let tracer = &mut self.tracer;
            self.req_net
                .advance_traced(now, &mut req_buf, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Request,
                        event,
                    });
                });
        }
        for msg in &req_buf {
            let bank = msg.bank as usize;
            let mut view = BankView {
                words: &mut self.banks[bank],
                num_banks: self.cfg.topology.num_banks() as u32,
                bank: msg.bank,
            };
            let mut out = std::mem::take(&mut self.adapter_out);
            out.clear();
            if self.tracer.is_off() {
                self.adapters[bank].handle(msg.src, &msg.req, &mut view, &mut out);
            } else {
                let tracer = &mut self.tracer;
                let bank_id = msg.bank;
                self.adapters[bank].handle_traced(
                    msg.src,
                    &msg.req,
                    &mut view,
                    &mut out,
                    &mut |event| {
                        tracer.emit(now, || TraceEvent::Sync {
                            bank: bank_id,
                            event,
                        });
                    },
                );
            }
            if self.bank_outbox[bank].is_empty() && !out.is_empty() {
                self.dirty_banks.push(msg.bank);
            }
            for (core, resp) in out.drain(..) {
                self.bank_outbox[bank].push_back(RespMsg { core, resp });
            }
            self.adapter_out = out;
        }
        self.req_buf = req_buf;

        // Phase 2: flush bank outboxes into the response network.
        if !self.dirty_banks.is_empty() {
            let mut still_dirty = std::mem::take(&mut self.bank_scratch);
            still_dirty.clear();
            let dirty = std::mem::take(&mut self.dirty_banks);
            for &bank in &dirty {
                while let Some(&msg) = self.bank_outbox[bank as usize].front() {
                    let route = self.topo.response_route(bank as usize, msg.core as usize);
                    match self.resp_try_send(route, msg, now) {
                        Ok(()) => {
                            self.bank_outbox[bank as usize].pop_front();
                        }
                        Err(_) => break,
                    }
                }
                if !self.bank_outbox[bank as usize].is_empty() {
                    still_dirty.push(bank);
                }
            }
            self.dirty_banks = still_dirty;
            self.bank_scratch = dirty;
        }

        // Phase 3: responses reach cores (through their Qnodes).
        let mut resp_buf = std::mem::take(&mut self.resp_buf);
        resp_buf.clear();
        if self.tracer.is_off() {
            self.resp_net.advance(now, &mut resp_buf);
        } else {
            let tracer = &mut self.tracer;
            self.resp_net
                .advance_traced(now, &mut resp_buf, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Response,
                        event,
                    });
                });
        }
        for msg in &resp_buf {
            let c = msg.core as usize;
            let output = self.qnodes[c].on_response(msg.resp);
            if let Some(delivered) = output.deliver {
                self.complete_response(c, delivered, now);
            }
            if let Some(wakeup) = output.wakeup {
                let bank = self.bank_of(wakeup.addr());
                self.tracer.emit(now, || TraceEvent::ReqSent {
                    core: msg.core,
                    bank,
                    kind: OpKind::WakeUp,
                });
                self.push_outbox(
                    c,
                    ReqMsg {
                        src: msg.core,
                        bank,
                        req: wakeup,
                    },
                );
            }
        }
        self.resp_buf = resp_buf;

        match self.cfg.exec_mode {
            ExecMode::EventDriven => {
                // Phase 4: step the runnable cores only.
                self.merge_pending_wakes();
                self.step_runnable_cores(now)?;

                // Phase 5: flush the non-empty core outboxes into the
                // request network, in the same rotated order the reference
                // uses over all cores (empty outboxes are no-ops there).
                if !self.dirty_cores.is_empty() {
                    let n = self.cores.len();
                    let start = (now % n as u64) as u32;
                    let dirty = std::mem::take(&mut self.dirty_cores);
                    let split = dirty.partition_point(|&c| c < start);
                    for &c in dirty[split..].iter().chain(dirty[..split].iter()) {
                        self.drain_core_outbox(c as usize, now);
                    }
                    let mut keep = std::mem::take(&mut self.core_scratch);
                    keep.clear();
                    keep.extend(
                        dirty
                            .iter()
                            .copied()
                            .filter(|&c| !self.core_outbox[c as usize].is_empty()),
                    );
                    self.dirty_cores = keep;
                    self.core_scratch = dirty;
                }

                // Barrier releases during Phase 4 become runnable next
                // cycle; merge now so `fast_forward` sees their
                // `ready_at`.
                self.merge_pending_wakes();
            }
            ExecMode::Reference => {
                // Phase 4: visit every core, eager accounting.
                for c in 0..self.cores.len() {
                    self.step_core_reference(c, now)?;
                }

                // Phase 5: flush core outboxes into the request network.
                // The start index rotates each cycle so no core gets
                // static injection priority (round-robin arbitration, as
                // in the real fabric).
                let n = self.cores.len();
                let start = (now as usize) % n;
                for i in 0..n {
                    let c = (start + i) % n;
                    self.drain_core_outbox(c, now);
                }
            }
        }
        Ok(())
    }

    /// Injects a core's queued requests until the network backpressures.
    fn drain_core_outbox(&mut self, c: usize, now: u64) {
        while let Some(&msg) = self.core_outbox[c].front() {
            let route = self.topo.request_route(c, msg.bank as usize);
            match self.req_try_send(route, msg, now) {
                Ok(()) => {
                    self.core_outbox[c].pop_front();
                }
                Err(_) => break,
            }
        }
    }

    /// Request-network injection with the tracing hook applied when a
    /// sink is attached (identical behaviour either way).
    fn req_try_send(
        &mut self,
        route: lrscwait_noc::Route,
        msg: ReqMsg,
        now: u64,
    ) -> Result<(), ReqMsg> {
        if self.tracer.is_off() {
            self.req_net.try_send(route, msg, now)
        } else {
            let tracer = &mut self.tracer;
            self.req_net.try_send_traced(route, msg, now, &mut |event| {
                tracer.emit(now, || TraceEvent::Noc {
                    net: NetDir::Request,
                    event,
                });
            })
        }
    }

    /// Response-network injection with the tracing hook applied when a
    /// sink is attached (identical behaviour either way).
    fn resp_try_send(
        &mut self,
        route: lrscwait_noc::Route,
        msg: RespMsg,
        now: u64,
    ) -> Result<(), RespMsg> {
        if self.tracer.is_off() {
            self.resp_net.try_send(route, msg, now)
        } else {
            let tracer = &mut self.tracer;
            self.resp_net
                .try_send_traced(route, msg, now, &mut |event| {
                    tracer.emit(now, || TraceEvent::Noc {
                        net: NetDir::Response,
                        event,
                    });
                })
        }
    }

    /// Queues a request on a core's outbox, tracking outbox dirtiness for
    /// the event-driven Phase 5.
    fn push_outbox(&mut self, c: usize, msg: ReqMsg) {
        self.core_outbox[c].push_back(msg);
        let id = c as u32;
        if let Err(pos) = self.dirty_cores.binary_search(&id) {
            self.dirty_cores.insert(pos, id);
        }
    }

    /// Merges cores woken outside the Phase 4 walk into the sorted
    /// runnable set.
    fn merge_pending_wakes(&mut self) {
        if self.pending_wake.is_empty() {
            return;
        }
        self.pending_wake.sort_unstable();
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        let (a, b) = (&self.runnable, &self.pending_wake);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                debug_assert_ne!(a[i], b[j], "core woken while already runnable");
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.pending_wake.clear();
        self.merge_scratch = std::mem::replace(&mut self.runnable, merged);
    }

    /// Walks the runnable set in ascending core order (the order the
    /// reference stepper visits cores in), compacting out cores that
    /// leave the `Running` state.
    fn step_runnable_cores(&mut self, now: u64) -> Result<(), SimError> {
        let mut runnable = std::mem::take(&mut self.runnable);
        let mut keep = 0;
        let mut result = Ok(());
        for i in 0..runnable.len() {
            let c = runnable[i] as usize;
            result = self.step_running_core(c, now);
            if self.cores[c].state == CoreState::Running {
                runnable[keep] = runnable[i];
                keep += 1;
            }
            if result.is_err() {
                // Fatal error: preserve the unstepped tail so the machine
                // state stays consistent for post-mortem inspection.
                runnable.copy_within(i + 1.., keep);
                keep += runnable.len() - i - 1;
                break;
            }
        }
        runnable.truncate(keep);
        self.runnable = runnable;
        result
    }

    fn complete_response(&mut self, c: usize, resp: MemResponse, now: u64) {
        match resp {
            MemResponse::StoreAck => {
                debug_assert!(self.cores[c].outstanding_stores > 0);
                self.cores[c].outstanding_stores -= 1;
            }
            MemResponse::Load { value }
            | MemResponse::Amo { old: value }
            | MemResponse::Lr { value }
            | MemResponse::Wait { value, .. } => {
                self.cores[c].complete(value, now);
                self.emit_wake(c, now);
                self.wake_from_sleep(c, now);
            }
            MemResponse::Sc { success } | MemResponse::ScWait { success } => {
                self.cores[c].complete(u32::from(!success), now);
                self.emit_wake(c, now);
                self.wake_from_sleep(c, now);
            }
            MemResponse::SuccessorUpdate { .. } => {
                unreachable!("SuccessorUpdate must be consumed by the Qnode")
            }
        }
    }

    /// Emits the [`TraceEvent::Wake`] for a blocking-response delivery,
    /// with the operation the core parked on as the cause.
    fn emit_wake(&mut self, c: usize, now: u64) {
        if !self.tracer.is_off() {
            let cause = WakeCause::Response(self.park_kind[c]);
            self.tracer.emit(now, || TraceEvent::Wake {
                core: c as u32,
                cause,
            });
        }
    }

    /// Event-driven bookkeeping after a blocking response delivery at
    /// `now`: settle the lazy sleep-cycle delta (the reference counts a
    /// sleep cycle per Phase 4 visit, i.e. for cycles `parked_at+1 ..
    /// now-1`; the core runs again in this cycle's Phase 4) and queue the
    /// core for the runnable set.
    fn wake_from_sleep(&mut self, c: usize, now: u64) {
        if self.cfg.exec_mode == ExecMode::EventDriven {
            self.cores[c].stats.sleep_cycles += now - 1 - self.cores[c].parked_at;
            self.pending_wake.push(c as u32);
        }
    }

    fn line_of(&self, pc: u32) -> Option<u32> {
        self.program
            .index_of(pc)
            .and_then(|i| self.program.source_lines.get(i).copied())
    }

    /// Reference-mode per-core visit: eager accounting for parked states,
    /// then the shared running-core step.
    fn step_core_reference(&mut self, c: usize, now: u64) -> Result<(), SimError> {
        match self.cores[c].state {
            CoreState::Halted => return Ok(()),
            CoreState::Barrier => {
                self.cores[c].stats.barrier_cycles += 1;
                return Ok(());
            }
            CoreState::WaitingMem => {
                self.cores[c].stats.sleep_cycles += 1;
                return Ok(());
            }
            CoreState::Running => {}
        }
        self.step_running_core(c, now)
    }

    /// Steps one core known to be in [`CoreState::Running`].
    fn step_running_core(&mut self, c: usize, now: u64) -> Result<(), SimError> {
        if now < self.cores[c].ready_at || self.core_outbox[c].len() >= 4 {
            self.cores[c].stats.stall_cycles += 1;
            return Ok(());
        }
        self.cores[c].stats.active_cycles += 1;
        let action = {
            let program = &self.program;
            let timing = self.cfg.timing;
            self.cores[c].execute(program, now, &timing)
        };
        let action = match action {
            Ok(a) => a,
            Err(ExecError::IllegalPc(pc)) => {
                return Err(SimError::IllegalPc { core: c as u32, pc })
            }
            Err(ExecError::Breakpoint(pc)) => {
                return Err(SimError::Breakpoint {
                    core: c as u32,
                    pc,
                    line: self.line_of(pc),
                })
            }
            Err(ExecError::Misaligned { pc, addr }) => {
                return Err(SimError::Misaligned {
                    core: c as u32,
                    pc,
                    addr,
                    line: self.line_of(pc),
                })
            }
        };
        match action {
            Action::Done => Ok(()),
            Action::Halt => {
                self.halt_core(c, now);
                Ok(())
            }
            Action::Mem(intent) => self.apply_intent(c, intent, now),
        }
    }

    fn halt_core(&mut self, c: usize, now: u64) {
        if self.cores[c].state != CoreState::Halted {
            self.cores[c].state = CoreState::Halted;
            self.halted += 1;
            self.tracer
                .emit(now, || TraceEvent::Halt { core: c as u32 });
            self.release_barrier_if_ready(now, c);
        }
    }

    /// Releases the barrier when every still-running core has arrived.
    ///
    /// `releaser` is the core whose Phase 4 step triggered the check (the
    /// last arriver, or a halting core). Event-driven mode settles each
    /// parked core's lazily-deferred `barrier_cycles` here and reproduces
    /// the reference's positional within-cycle accounting: the reference
    /// visits cores in ascending order, so cores *after* the releaser are
    /// seen as `Running` but not yet `ready_at`-eligible (one stall
    /// cycle), while cores *before* it were still parked when visited
    /// (one more barrier cycle).
    fn release_barrier_if_ready(&mut self, now: u64, releaser: usize) {
        let running = self.cores.len() - self.halted;
        if running > 0 && self.barrier_waiting == running {
            let event_driven = self.cfg.exec_mode == ExecMode::EventDriven;
            let waiting = self.barrier_waiting as u32;
            self.tracer
                .emit(now, || TraceEvent::BarrierRelease { waiting });
            for (x, core) in self.cores.iter_mut().enumerate() {
                if core.state == CoreState::Barrier {
                    core.state = CoreState::Running;
                    core.ready_at = now + 1;
                    self.tracer.emit(now, || TraceEvent::Wake {
                        core: x as u32,
                        cause: WakeCause::Barrier,
                    });
                    if event_driven {
                        if x > releaser {
                            core.stats.barrier_cycles += now - 1 - core.parked_at;
                            core.stats.stall_cycles += 1;
                        } else {
                            core.stats.barrier_cycles += now - core.parked_at;
                        }
                        if x != releaser {
                            // The releaser is mid-step in the runnable
                            // walk and stays in the set via compaction.
                            self.pending_wake.push(x as u32);
                        }
                    }
                }
            }
            self.barrier_waiting = 0;
        }
    }

    fn apply_intent(&mut self, c: usize, intent: MemIntent, now: u64) -> Result<(), SimError> {
        match intent {
            MemIntent::Fence => {
                if self.cores[c].outstanding_stores == 0 && self.core_outbox[c].is_empty() {
                    self.cores[c].pc += 4;
                }
                // Otherwise: retry next cycle (fence stalls the pipeline).
                Ok(())
            }
            MemIntent::Load {
                addr,
                rd,
                width,
                signed,
            } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    let value = self.mmio_read(c, addr - MMIO_BASE);
                    self.cores[c].set_reg(rd, extract(value, addr, width, signed));
                    self.cores[c].pc += 4;
                    return Ok(());
                }
                if addr >= ROM_BASE {
                    let idx = ((addr - ROM_BASE) / 4) as usize;
                    let Some(&word) = self.program.raw.get(idx) else {
                        return Err(SimError::Fault {
                            core: c as u32,
                            addr,
                            what: "load beyond ROM",
                        });
                    };
                    self.cores[c].set_reg(rd, extract(word, addr, width, signed));
                    self.cores[c].pc += 4;
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "load outside SPM",
                    });
                }
                self.cores[c].pending = Some(PendingMem {
                    rd,
                    addr,
                    kind: PendingKind::Load { width, signed },
                });
                self.cores[c].state = CoreState::WaitingMem;
                self.cores[c].parked_at = now;
                self.cores[c].pc += 4;
                self.emit_park(c, OpKind::Load, now);
                self.push_request(c, MemRequest::Load { addr: addr & !3 }, now);
                Ok(())
            }
            MemIntent::Store { addr, value, width } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    self.cores[c].pc += 4;
                    self.mmio_write(c, addr - MMIO_BASE, value, now);
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "store outside SPM (ROM is read-only)",
                    });
                }
                if self.cores[c].outstanding_stores >= self.cfg.timing.store_buffer {
                    return Ok(()); // buffer full: stall, retry next cycle
                }
                let (aligned, lane_value, mask) = store_lanes(addr, value, width);
                self.cores[c].outstanding_stores += 1;
                self.cores[c].pc += 4;
                self.push_request(
                    c,
                    MemRequest::Store {
                        addr: aligned,
                        value: lane_value,
                        mask,
                    },
                    now,
                );
                Ok(())
            }
            MemIntent::Atomic {
                addr,
                rd,
                op,
                operand,
            } => {
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c as u32,
                        addr,
                        what: "atomic outside SPM",
                    });
                }
                let (req, kind) = match op {
                    AmoOp::Lr => (MemRequest::Lr { addr }, PendingKind::Value),
                    AmoOp::Sc => (
                        MemRequest::Sc {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::LrWait => (MemRequest::LrWait { addr }, PendingKind::Value),
                    AmoOp::ScWait => (
                        MemRequest::ScWait {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::MWait => (
                        MemRequest::MWait {
                            addr,
                            expected: operand,
                        },
                        PendingKind::Value,
                    ),
                    rmw => (
                        MemRequest::Amo {
                            addr,
                            op: map_rmw(rmw),
                            operand,
                        },
                        PendingKind::Value,
                    ),
                };
                self.cores[c].pending = Some(PendingMem { rd, addr, kind });
                self.cores[c].state = CoreState::WaitingMem;
                self.cores[c].parked_at = now;
                self.cores[c].pc += 4;
                self.emit_park(c, amo_op_kind(op), now);
                self.push_request(c, req, now);
                Ok(())
            }
        }
    }

    /// Marks a core parked on a blocking operation, remembering the
    /// cause for the later [`TraceEvent::Wake`] (tracing only).
    fn emit_park(&mut self, c: usize, kind: OpKind, now: u64) {
        if !self.tracer.is_off() {
            self.park_kind[c] = kind;
            self.tracer.emit(now, || TraceEvent::Park {
                core: c as u32,
                cause: kind,
            });
        }
    }

    fn push_request(&mut self, c: usize, req: MemRequest, now: u64) {
        let wakeup = self.qnodes[c].on_core_request(&req);
        let bank = self.bank_of(req.addr());
        self.tracer.emit(now, || TraceEvent::ReqSent {
            core: c as u32,
            bank,
            kind: req_kind(&req),
        });
        self.push_outbox(
            c,
            ReqMsg {
                src: c as u32,
                bank,
                req,
            },
        );
        if let Some(wk) = wakeup {
            let wk_bank = self.bank_of(wk.addr());
            self.tracer.emit(now, || TraceEvent::ReqSent {
                core: c as u32,
                bank: wk_bank,
                kind: OpKind::WakeUp,
            });
            self.push_outbox(
                c,
                ReqMsg {
                    src: c as u32,
                    bank: wk_bank,
                    req: wk,
                },
            );
        }
    }

    fn mmio_read(&self, c: usize, offset: u32) -> u32 {
        match offset {
            mmio_reg::HARTID => c as u32,
            mmio_reg::NUM_CORES => self.cores.len() as u32,
            o if (mmio_reg::ARG0..mmio_reg::ARG0 + 4 * NUM_ARGS as u32).contains(&o)
                && o % 4 == 0 =>
            {
                self.cfg.args[((o - mmio_reg::ARG0) / 4) as usize]
            }
            _ => 0,
        }
    }

    fn mmio_write(&mut self, c: usize, offset: u32, value: u32, now: u64) {
        match offset {
            mmio_reg::EXIT => self.halt_core(c, now),
            mmio_reg::OP_COUNT => self.cores[c].stats.ops += u64::from(value),
            mmio_reg::REGION => {
                if value != 0 {
                    if self.cores[c].stats.region_start.is_none() {
                        self.cores[c].stats.region_start = Some(now);
                    }
                    self.tracer
                        .emit(now, || TraceEvent::RegionEnter { core: c as u32 });
                } else {
                    self.cores[c].stats.region_end = Some(now);
                    self.tracer
                        .emit(now, || TraceEvent::RegionExit { core: c as u32 });
                }
            }
            mmio_reg::BARRIER => {
                self.cores[c].state = CoreState::Barrier;
                self.cores[c].parked_at = now;
                self.barrier_waiting += 1;
                self.tracer
                    .emit(now, || TraceEvent::BarrierArrive { core: c as u32 });
                self.release_barrier_if_ready(now, c);
            }
            mmio_reg::PRINT => self.debug_log.push((now, c as u32, value)),
            _ => {}
        }
    }
}

/// Trace [`OpKind`] of a request (what a core sent towards memory).
fn req_kind(req: &MemRequest) -> OpKind {
    match req {
        MemRequest::Load { .. } => OpKind::Load,
        MemRequest::Store { .. } => OpKind::Store,
        MemRequest::Amo { .. } => OpKind::Amo,
        MemRequest::Lr { .. } => OpKind::Lr,
        MemRequest::Sc { .. } => OpKind::Sc,
        MemRequest::LrWait { .. } => OpKind::LrWait,
        MemRequest::ScWait { .. } => OpKind::ScWait,
        MemRequest::MWait { .. } => OpKind::MWait,
        MemRequest::WakeUp { .. } => OpKind::WakeUp,
    }
}

fn map_rmw(op: AmoOp) -> RmwOp {
    match op {
        AmoOp::Swap => RmwOp::Swap,
        AmoOp::Add => RmwOp::Add,
        AmoOp::Xor => RmwOp::Xor,
        AmoOp::And => RmwOp::And,
        AmoOp::Or => RmwOp::Or,
        AmoOp::Min => RmwOp::Min,
        AmoOp::Max => RmwOp::Max,
        AmoOp::Minu => RmwOp::Minu,
        AmoOp::Maxu => RmwOp::Maxu,
        other => unreachable!("{other:?} is not an RMW AMO"),
    }
}
