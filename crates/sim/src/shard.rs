//! Persistent worker pool for bank-sharded simulation.
//!
//! A `Machine` built with `SimConfig::shards = n > 1` owns one
//! [`WorkerPool`] of `n − 1` threads, spawned once at construction and
//! joined on drop — **no per-cycle spawning, no steady-state allocation**.
//! Each cycle, the coordinator (the thread driving `Machine::step_cycle`)
//! dispatches at most two jobs — the bank-service phase and the
//! core-stepping phase (see `crate::phases`) — and participates as shard
//! 0 itself. A job is a [`Job`]: a `Copy` bundle of raw slice pointers
//! into the machine plus the cycle parameters.
//!
//! # Safety model
//!
//! All `unsafe` in the sharded path lives in this module and rests on two
//! invariants, both enforced by construction:
//!
//! 1. **Disjointness** — shard `s` touches only elements in its contiguous
//!    `bank_ranges[s]` / `core_ranges[s]` slice of each array (the manual
//!    `split_at_mut` pattern), plus its own `ShardScratch`. Ranges
//!    partition `0..banks` and `0..cores` and are fixed at pool build.
//! 2. **Phase scoping** — the pointers in a [`Job`] are valid for the
//!    duration of one [`WorkerPool::dispatch`] call: the coordinator
//!    derives them from `&mut Machine` immediately before dispatch,
//!    touches nothing else until every worker has signalled completion,
//!    and `dispatch` does not return until then. Workers only dereference
//!    a job between observing the epoch store (Acquire) that published it
//!    and their completion store (Release), so all accesses are inside
//!    the coordinator's exclusive-borrow window.
//!
//! The wake protocol is spin-then-park: a worker spins briefly on the
//! epoch counter, then blocks on a condvar (so an idle or fast-forwarding
//! machine does not burn host CPUs). Dispatch, parking and wakeup touch
//! no heap — the counting-allocator suite runs a sharded machine to prove
//! steady-state cycles stay allocation-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use lrscwait_core::{Qnode, SyncAdapter};
use lrscwait_telemetry::{PoolTelemetry, WorkerUtil};
use lrscwait_trace::OpKind;

use crate::config::{ExecMode, SimConfig};
use crate::cpu::{Core, DecodedProgram};
use crate::phases::{self, CorePhase, ReqMsg, RespMsg, ShardScratch};
use crate::translate::Translation;

/// How many times a worker polls the epoch counter before parking on the
/// condvar. Phases follow each other within a few hundred nanoseconds
/// while the machine steps, so a short spin catches the common case
/// without a syscall; once the budget is spent the worker must *park*, so
/// an idle or fast-forwarding machine burns no host CPU per worker (the
/// `pool_parks_when_idle` test pins this behaviour down).
pub(crate) const WORKER_SPIN_LIMIT: u32 = 256;

/// The coordinator's phase barrier yields to the OS scheduler once per
/// this many spins while waiting for the last shard. The barrier is
/// always short (workers are mid-phase, never parked), so it spins rather
/// than parks — but on an oversubscribed host the straggler may need this
/// thread's CPU, hence the periodic `yield_now`.
pub(crate) const COORDINATOR_YIELD_INTERVAL: u32 = 64;

/// Splits `0..n` into `shards` contiguous ranges, remainder spread over
/// the leading ranges (every range non-empty when `shards <= n`, which
/// config validation guarantees).
pub(crate) fn ranges(n: usize, shards: usize) -> Vec<(u32, u32)> {
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push((lo as u32, (lo + len) as u32));
        lo += len;
    }
    debug_assert_eq!(lo, n);
    out
}

/// One parallel phase, as raw parts. `Copy` so the coordinator can keep a
/// copy while the slot is handed to the workers.
#[derive(Clone, Copy)]
pub(crate) enum Job {
    /// Phase 1b: sharded per-bank request service.
    Banks {
        reqs: *const ReqMsg,
        reqs_len: usize,
        order: *const (u32, u32),
        order_len: usize,
        banks: *mut Vec<u32>,
        adapters: *mut Box<dyn SyncAdapter>,
        bank_outbox: *mut VecDeque<RespMsg>,
        num_banks: u32,
        tracing: bool,
    },
    /// Phase 4: sharded core stepping.
    Cores {
        cores: *mut Core,
        qnodes: *mut Qnode,
        core_outbox: *mut VecDeque<ReqMsg>,
        park_kind: *mut OpKind,
        runnable: *const u32,
        runnable_len: usize,
        program: *const DecodedProgram,
        cfg: *const SimConfig,
        /// Superblock translation; null unless `mode` is `Translated`.
        translation: *const Translation,
        num_banks: u32,
        now: u64,
        /// Run-ahead ceiling for translated superblocks (`now` otherwise).
        horizon: u64,
        mode: ExecMode,
        tracing: bool,
    },
}

// SAFETY: a `Job` is only dereferenced inside a dispatch window (see the
// module docs); the pointers it carries target state the coordinator has
// exclusive access to for that window, partitioned disjointly per shard.
unsafe impl Send for Job {}

struct Shared {
    /// Bumped once per dispatched job; workers run when it changes.
    epoch: AtomicUsize,
    /// The published job (valid while `done < workers` for this epoch).
    job: std::cell::UnsafeCell<Option<Job>>,
    /// Workers finished with the current epoch's job.
    done: AtomicUsize,
    shutdown: AtomicBool,
    /// Set when a shard's phase body panicked; the coordinator re-raises
    /// after the barrier instead of hanging on a missing `done` signal.
    poisoned: AtomicBool,
    /// Per-shard scratch the phases accumulate into. One entry per
    /// shard; shard `s` (worker or coordinator) touches only entry `s`
    /// during a dispatch window, the coordinator reads all of them
    /// between windows. Per-element `UnsafeCell` so concurrent shards
    /// never materialize overlapping `&mut` borrows of the whole slice —
    /// each thread only ever forms a `&mut` to its own element.
    scratch: Box<[std::cell::UnsafeCell<ShardScratch>]>,
    /// Contiguous bank / core ranges per shard (fixed at build).
    bank_ranges: Vec<(u32, u32)>,
    core_ranges: Vec<(u32, u32)>,
    /// Park/wake support for idle workers.
    lock: Mutex<()>,
    cv: Condvar,
    /// Workers currently parked on the condvar (diagnostics/tests only —
    /// the wake protocol itself never reads it).
    parked: AtomicUsize,
    /// Per-worker busy/spin/park counters. Disabled (one relaxed atomic
    /// load per loop iteration) until the machine's profiler is enabled.
    telemetry: PoolTelemetry,
}

// SAFETY: the `UnsafeCell`s are coordinated by the epoch/done protocol —
// `job` is written only while all workers wait, `scratch[s]` is written
// only by shard `s` inside a window (disjoint per shard) and read by the
// coordinator only outside windows.
unsafe impl Sync for Shared {}

/// Persistent pool of `shards − 1` workers plus the coordinating caller.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("shards", &self.shards)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns the pool: `shards − 1` workers, shard 0 reserved for the
    /// coordinator. `num_banks` / `num_cores` fix the contiguous ranges.
    pub fn new(shards: usize, num_banks: usize, num_cores: usize) -> WorkerPool {
        assert!(shards >= 2, "a 1-shard machine runs phases inline");
        let scratch: Box<[std::cell::UnsafeCell<ShardScratch>]> = (0..shards)
            .map(|_| std::cell::UnsafeCell::new(ShardScratch::default()))
            .collect();
        let shared = Arc::new(Shared {
            epoch: AtomicUsize::new(0),
            job: std::cell::UnsafeCell::new(None),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            scratch,
            bank_ranges: ranges(num_banks, shards),
            core_ranges: ranges(num_cores, shards),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            parked: AtomicUsize::new(0),
            telemetry: PoolTelemetry::new(shards - 1),
        });
        let handles = (1..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lrscwait-shard-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            shards,
        }
    }

    /// Number of shards (workers + coordinator).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Turns on per-worker busy/spin/park accounting (a host-side
    /// observation only — the dispatch protocol is unchanged).
    pub fn enable_telemetry(&self) {
        self.shared.telemetry.enable();
    }

    /// Snapshot of per-worker utilization counters (all zero until
    /// [`WorkerPool::enable_telemetry`]).
    pub fn worker_util(&self) -> Vec<WorkerUtil> {
        self.shared.telemetry.snapshot()
    }

    /// Number of workers currently parked on the condvar (all of
    /// `shards − 1` once the pool has been idle past
    /// [`WORKER_SPIN_LIMIT`]). Diagnostics/tests only.
    #[allow(dead_code)] // exercised from unit tests; kept for diagnostics
    pub fn parked_workers(&self) -> usize {
        self.shared.parked.load(Ordering::Acquire)
    }

    /// Mutable access to a shard's scratch — only call between dispatch
    /// windows (the coordinator's merge step).
    pub fn scratch_mut(&mut self, shard: usize) -> &mut ShardScratch {
        // SAFETY: `&mut self` proves no dispatch window is open (dispatch
        // borrows the pool for its whole duration), so no worker is
        // touching any scratch.
        unsafe { &mut *self.shared.scratch[shard].get() }
    }

    /// Clears every shard's per-cycle accumulators.
    pub fn reset_scratch(&mut self) {
        for shard in 0..self.shards {
            self.scratch_mut(shard).reset();
        }
    }

    /// Runs `job` across all shards and returns when every shard is done.
    /// The coordinator executes shard 0 on the calling thread.
    pub fn dispatch(&mut self, job: Job) {
        let shared = &*self.shared;
        // A shard that panicked is parked until shutdown and will never
        // signal again: fail fast instead of hanging the barrier.
        assert!(
            !shared.poisoned.load(Ordering::Acquire),
            "worker pool poisoned by an earlier shard panic"
        );
        shared.done.store(0, Ordering::Relaxed);
        // SAFETY: every worker is waiting for a new epoch (the previous
        // dispatch returned only after all of them signalled done and they
        // read the job slot only after observing a fresh epoch), so the
        // slot is not aliased.
        unsafe {
            *shared.job.get() = Some(job);
        }
        shared.epoch.fetch_add(1, Ordering::Release);
        // Wake parked workers. Taking the lock orders this notify after
        // any in-flight decision to wait (the worker re-checks the epoch
        // under the same lock), so no wakeup is lost.
        {
            let _guard = shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shared.cv.notify_all();
        }
        // Participate as shard 0. Even if our own shard panics, wait for
        // the workers first (they hold live pointers into the machine)
        // and only then unwind.
        // SAFETY: the job was built from the coordinator's own `&mut
        // Machine` borrow for this window; shard 0's ranges are disjoint
        // from every worker's.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            execute(shared, &job, 0);
        }));
        // Phase barrier: wait for the workers. Panicked workers still
        // signal `done` (setting the poison flag), so this cannot hang.
        let workers = self.shards - 1;
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) < workers {
            spins += 1;
            if spins % COORDINATOR_YIELD_INTERVAL == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if let Err(panic) = own {
            std::panic::resume_unwind(panic);
        }
        assert!(
            !shared.poisoned.load(Ordering::Acquire),
            "a shard worker panicked during a parallel phase (see its stderr output)"
        );
    }

    /// Stops and joins every worker.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _guard = self
                .shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, shard: usize) {
    let mut seen = 0usize;
    loop {
        // Spin briefly, then park: phases follow each other closely while
        // the machine steps, but fast-forwarded stretches and sequential
        // sub-phases should not burn a host CPU per worker. With pool
        // telemetry enabled the wait splits into spin time and park time
        // (timestamps taken outside the dispatch window, so the protocol
        // and the phase bodies are unperturbed).
        let timing = shared.telemetry.is_enabled();
        let wait_start = timing.then(Instant::now);
        let mut park_ns = 0u64;
        let mut epoch = shared.epoch.load(Ordering::Acquire);
        let mut spins = 0u32;
        while epoch == seen && spins < WORKER_SPIN_LIMIT {
            std::hint::spin_loop();
            spins += 1;
            epoch = shared.epoch.load(Ordering::Acquire);
        }
        if epoch == seen {
            let park_start = timing.then(Instant::now);
            let mut guard = shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shared.parked.fetch_add(1, Ordering::Release);
            loop {
                epoch = shared.epoch.load(Ordering::Acquire);
                if epoch != seen {
                    break;
                }
                guard = shared
                    .cv
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            shared.parked.fetch_sub(1, Ordering::Release);
            if let Some(started) = park_start {
                park_ns = started.elapsed().as_nanos() as u64;
            }
        }
        seen = epoch;
        if let Some(started) = wait_start {
            let total_ns = started.elapsed().as_nanos() as u64;
            shared
                .telemetry
                .record_wait(shard - 1, total_ns.saturating_sub(park_ns), park_ns);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch Acquire above synchronizes with the dispatch
        // Release that published the job; the slot is not rewritten until
        // this worker (and all others) store `done`.
        let job = unsafe { (*shared.job.get()).expect("epoch bumped without a job") };
        // SAFETY: see the module safety model — this shard only touches
        // its own contiguous ranges and scratch. A panic in the phase
        // body must not skip the `done` signal (the coordinator would
        // spin forever waiting on this shard): catch it, poison the pool,
        // signal, and let the coordinator re-raise after the barrier.
        let busy_start = timing.then(Instant::now);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            execute(shared, &job, shard);
        }));
        if let Some(started) = busy_start {
            shared
                .telemetry
                .record_busy(shard - 1, started.elapsed().as_nanos() as u64);
        }
        if result.is_err() {
            shared.poisoned.store(true, Ordering::Release);
        }
        shared.done.fetch_add(1, Ordering::Release);
        if result.is_err() {
            // Dead shard: park until shutdown so no further job runs on
            // half-initialized state; every later dispatch fails fast on
            // the poison flag.
            let mut guard = shared
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !shared.shutdown.load(Ordering::Acquire) {
                guard = shared
                    .cv
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            return;
        }
    }
}

/// Runs one shard's part of a job. See the module docs for the safety
/// argument; all slice reconstruction from raw parts happens here.
unsafe fn execute(shared: &Shared, job: &Job, shard: usize) {
    // Element-level cell access: no `&mut` to the scratch slice as a
    // whole is ever formed, so concurrent shards never alias.
    let scratch = &mut *shared.scratch[shard].get();
    match *job {
        Job::Banks {
            reqs,
            reqs_len,
            order,
            order_len,
            banks,
            adapters,
            bank_outbox,
            num_banks,
            tracing,
        } => {
            let (lo, hi) = shared.bank_ranges[shard];
            let len = (hi - lo) as usize;
            let reqs = std::slice::from_raw_parts(reqs, reqs_len);
            let order = std::slice::from_raw_parts(order, order_len);
            // Narrow the (bank, delivery-index)-sorted order list to this
            // shard's banks.
            let start = order.partition_point(|&(b, _)| b < lo);
            let end = order.partition_point(|&(b, _)| b < hi);
            phases::service_banks(
                lo,
                std::slice::from_raw_parts_mut(banks.add(lo as usize), len),
                std::slice::from_raw_parts_mut(adapters.add(lo as usize), len),
                std::slice::from_raw_parts_mut(bank_outbox.add(lo as usize), len),
                num_banks,
                reqs,
                &order[start..end],
                scratch,
                tracing,
            );
        }
        Job::Cores {
            cores,
            qnodes,
            core_outbox,
            park_kind,
            runnable,
            runnable_len,
            program,
            cfg,
            translation,
            num_banks,
            now,
            horizon,
            mode,
            tracing,
        } => {
            let (lo, hi) = shared.core_ranges[shard];
            let len = (hi - lo) as usize;
            let mut ctx = CorePhase {
                core_lo: lo,
                cores: std::slice::from_raw_parts_mut(cores.add(lo as usize), len),
                qnodes: std::slice::from_raw_parts_mut(qnodes.add(lo as usize), len),
                core_outbox: std::slice::from_raw_parts_mut(core_outbox.add(lo as usize), len),
                park_kind: std::slice::from_raw_parts_mut(park_kind.add(lo as usize), len),
                program: &*program,
                cfg: &*cfg,
                num_banks,
            };
            match mode {
                ExecMode::EventDriven => {
                    let runnable = std::slice::from_raw_parts(runnable, runnable_len);
                    let start = runnable.partition_point(|&c| c < lo);
                    let end = runnable.partition_point(|&c| c < hi);
                    phases::step_runnable_cores(
                        &mut ctx,
                        &runnable[start..end],
                        now,
                        scratch,
                        tracing,
                    );
                }
                ExecMode::Reference => {
                    phases::step_all_cores(&mut ctx, now, scratch, tracing);
                }
                ExecMode::Translated => {
                    let runnable = std::slice::from_raw_parts(runnable, runnable_len);
                    let start = runnable.partition_point(|&c| c < lo);
                    let end = runnable.partition_point(|&c| c < hi);
                    phases::step_translated_cores(
                        &mut ctx,
                        &*translation,
                        &runnable[start..end],
                        now,
                        horizon,
                        scratch,
                        tracing,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_parks_when_idle() {
        // An idle pool must end up with every worker parked on the
        // condvar — not spinning — once the spin budget is exhausted.
        let mut pool = WorkerPool::new(4, 8, 8);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.parked_workers() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers still not parked: {} of 3",
                pool.parked_workers()
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.parked_workers(), 3);
        // Shutdown wakes the parked workers; after the join none remain.
        pool.shutdown();
        assert_eq!(pool.parked_workers(), 0);
    }

    #[test]
    fn ranges_partition_exactly() {
        for (n, shards) in [(8, 3), (1024, 4), (5, 5), (7, 2)] {
            let r = ranges(n, shards);
            assert_eq!(r.len(), shards);
            assert_eq!(r[0].0, 0);
            assert_eq!(r[shards - 1].1 as usize, n);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].0 < w[0].1, "non-empty");
            }
        }
    }
}
