//! The bodies of `Machine::step_cycle`'s two data-parallel phases —
//! per-bank request service and per-core stepping — extracted so they can
//! run either inline (one shard, the default) or on the persistent worker
//! pool (`crate::shard`), over a *contiguous range* of banks or cores.
//!
//! # Why ranges make parallelism deterministic
//!
//! Within one cycle, all cross-bank and cross-core work is commutative:
//! a bank adapter touches only its own words, queue state and outbox, and
//! a stepping core touches only its own registers, Qnode and request
//! outbox. The only ordering-sensitive artifacts a parallel phase produces
//! are *merge lists* — which banks became ready to flush, which cores
//! became runnable or dirty, which trace events and debug prints occurred.
//! Each shard accumulates those into its own [`ShardScratch`] in ascending
//! id order; because shard ranges are contiguous and themselves ordered,
//! concatenating the shard scratches in shard order reproduces exactly the
//! global ascending-id order a single-sharded walk produces. Every merge
//! the coordinator performs is therefore a deterministic, bank-id- (or
//! core-id-) ordered merge — the machine's determinism contract.
//!
//! # Tracing without branches
//!
//! Both phase bodies are generic over a [`TraceCtx`]: the untraced
//! instantiation ([`NoTrace`]) compiles every emit site to nothing — the
//! per-step `is_off()` branch the previous implementation paid is gone
//! entirely from the hot loop (one branch per *phase* per cycle selects
//! the instantiation). The traced instantiation ([`BufTrace`]) appends to
//! a per-shard buffer that the coordinator drains in shard order, so the
//! observed event stream is identical for any shard count.

use std::collections::VecDeque;

use lrscwait_core::{MemRequest, MemResponse, Qnode, SyncAdapter, WordStorage};
use lrscwait_isa::AmoOp;
use lrscwait_trace::{OpKind, TraceEvent};

use crate::config::{mmio_reg, SimConfig, MMIO_BASE, MMIO_SIZE, NUM_ARGS, ROM_BASE};
use crate::cpu::{
    amo_op_kind, extract, store_lanes, Action, Core, CoreState, DecodedProgram, ExecError,
    MemIntent, PendingKind, PendingMem,
};
use crate::machine::SimError;
use crate::translate::{run_block, Translation};

/// Request-network payload.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReqMsg {
    pub src: u32,
    pub bank: u32,
    pub req: MemRequest,
}

/// Response-network payload.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RespMsg {
    pub core: u32,
    pub resp: MemResponse,
}

/// Adapter-facing view of one bank's storage with global addressing.
pub(crate) struct BankView<'a> {
    pub words: &'a mut [u32],
    pub num_banks: u32,
    pub bank: u32,
}

impl WordStorage for BankView<'_> {
    fn read_word(&self, addr: u32) -> u32 {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize]
    }

    fn write_word(&mut self, addr: u32, value: u32) {
        let w = addr / 4;
        debug_assert_eq!(
            w % self.num_banks,
            self.bank,
            "address routed to wrong bank"
        );
        self.words[(w / self.num_banks) as usize] = value;
    }
}

/// Trace-emission context a phase body is monomorphized over.
///
/// [`NoTrace`] (untraced runs) compiles every emit site away; [`BufTrace`]
/// appends to a per-shard buffer the coordinator later drains in shard
/// order. Either way the phase body itself contains no per-event
/// `is_off()` branch.
pub(crate) trait TraceCtx {
    /// Whether events are recorded (drives the few sites that maintain
    /// trace-only side state, e.g. the park-cause table).
    const ENABLED: bool;
    /// Emits one event; the constructor is never evaluated when disabled.
    fn emit(&mut self, event: impl FnOnce() -> TraceEvent);
}

/// The zero-cost untraced context.
pub(crate) struct NoTrace;

impl TraceCtx for NoTrace {
    const ENABLED: bool = false;
    #[inline(always)]
    fn emit(&mut self, _event: impl FnOnce() -> TraceEvent) {}
}

/// Buffering trace context: events land in the shard's scratch buffer in
/// emission order (ascending bank/core id within the shard).
pub(crate) struct BufTrace<'a>(pub &'a mut Vec<TraceEvent>);

impl TraceCtx for BufTrace<'_> {
    const ENABLED: bool = true;
    #[inline]
    fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        self.0.push(event());
    }
}

/// Per-shard accumulation state. One instance per shard lives in the
/// `Machine`; all vectors reach a steady-state capacity and are reused,
/// so sharded cycles stay allocation-free.
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    /// Reusable response buffer handed to `SyncAdapter::handle`.
    pub adapter_out: Vec<(u32, MemResponse)>,
    /// Banks whose outbox went empty → non-empty this cycle (ascending).
    pub new_dirty_banks: Vec<u32>,
    /// Runnable cores that stay runnable after stepping (ascending).
    pub kept_runnable: Vec<u32>,
    /// Cores whose request outbox went empty → non-empty (ascending).
    pub new_dirty_cores: Vec<u32>,
    /// MMIO debug prints this cycle: `(core, value)` (ascending core).
    pub prints: Vec<(u32, u32)>,
    /// Cores that halted during this phase.
    pub newly_halted: u32,
    /// Cores that arrived at the barrier during this phase.
    pub newly_barrier: u32,
    /// First fatal error in this shard (lowest core id within the shard).
    pub error: Option<SimError>,
    /// Core id the error occurred on (for cross-shard arbitration).
    pub error_core: u32,
    /// Buffered trace events (only populated when a sink is attached).
    pub trace: Vec<TraceEvent>,
}

impl ShardScratch {
    /// Clears all per-cycle accumulators (capacity is retained).
    pub fn reset(&mut self) {
        self.new_dirty_banks.clear();
        self.kept_runnable.clear();
        self.new_dirty_cores.clear();
        self.prints.clear();
        self.newly_halted = 0;
        self.newly_barrier = 0;
        self.error = None;
        self.error_core = 0;
        debug_assert!(self.trace.is_empty(), "trace buffer drained every cycle");
    }
}

/// Services every delivered request whose destination bank lies in
/// `[bank_lo, bank_lo + banks.len())`, in bank-id order (and, within one
/// bank, in delivery order): the adapter performs its side effects on the
/// bank words and appends responses to the bank's outbox.
///
/// `order` is the cycle's full delivery list sorted by `(bank, delivery
/// index)`; the caller has already narrowed it to this shard's banks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn service_banks(
    bank_lo: u32,
    banks: &mut [Vec<u32>],
    adapters: &mut [Box<dyn SyncAdapter>],
    bank_outbox: &mut [VecDeque<RespMsg>],
    num_banks: u32,
    reqs: &[ReqMsg],
    order: &[(u32, u32)],
    scratch: &mut ShardScratch,
    tracing: bool,
) {
    let ShardScratch {
        adapter_out,
        new_dirty_banks,
        trace,
        ..
    } = scratch;
    if tracing {
        service_banks_inner(
            bank_lo,
            banks,
            adapters,
            bank_outbox,
            num_banks,
            reqs,
            order,
            adapter_out,
            new_dirty_banks,
            &mut BufTrace(trace),
        );
    } else {
        service_banks_inner(
            bank_lo,
            banks,
            adapters,
            bank_outbox,
            num_banks,
            reqs,
            order,
            adapter_out,
            new_dirty_banks,
            &mut NoTrace,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn service_banks_inner<T: TraceCtx>(
    bank_lo: u32,
    banks: &mut [Vec<u32>],
    adapters: &mut [Box<dyn SyncAdapter>],
    bank_outbox: &mut [VecDeque<RespMsg>],
    num_banks: u32,
    reqs: &[ReqMsg],
    order: &[(u32, u32)],
    adapter_out: &mut Vec<(u32, MemResponse)>,
    new_dirty_banks: &mut Vec<u32>,
    trace: &mut T,
) {
    for &(bank, idx) in order {
        let msg = &reqs[idx as usize];
        debug_assert_eq!(msg.bank, bank);
        let local = (bank - bank_lo) as usize;
        let mut view = BankView {
            words: &mut banks[local],
            num_banks,
            bank,
        };
        adapter_out.clear();
        if T::ENABLED {
            adapters[local].handle_traced(
                msg.src,
                &msg.req,
                &mut view,
                adapter_out,
                &mut |event| {
                    trace.emit(|| TraceEvent::Sync { bank, event });
                },
            );
        } else {
            adapters[local].handle(msg.src, &msg.req, &mut view, adapter_out);
        }
        let outbox = &mut bank_outbox[local];
        if outbox.is_empty() && !adapter_out.is_empty() {
            new_dirty_banks.push(bank);
        }
        for (core, resp) in adapter_out.drain(..) {
            outbox.push_back(RespMsg { core, resp });
        }
    }
}

/// The per-core stepping phase over one contiguous shard of cores.
///
/// Owns mutable access to the shard's cores, Qnodes, request outboxes and
/// park-cause table, plus the shared read-only program and configuration.
/// All ordering-sensitive side effects (halt/barrier counts, debug prints,
/// newly-dirty cores, trace events) go to the [`ShardScratch`]; barrier
/// *release* is deferred to the machine's sequential sub-phase, which is
/// what makes stepping shardable in the first place.
pub(crate) struct CorePhase<'a> {
    /// First global core id of this shard.
    pub core_lo: u32,
    pub cores: &'a mut [Core],
    pub qnodes: &'a mut [Qnode],
    pub core_outbox: &'a mut [VecDeque<ReqMsg>],
    pub park_kind: &'a mut [OpKind],
    pub program: &'a DecodedProgram,
    pub cfg: &'a SimConfig,
    pub num_banks: u32,
}

/// Steps this shard's slice of the runnable set (event-driven mode),
/// compacting cores that stay `Running` into `scratch.kept_runnable`.
///
/// `runnable` must be the ascending sub-slice of the global runnable set
/// that falls inside this shard's core range. On a fatal error the
/// unstepped tail is preserved in the kept list (post-mortem state), the
/// error recorded in the scratch, and stepping stops.
pub(crate) fn step_runnable_cores(
    ctx: &mut CorePhase<'_>,
    runnable: &[u32],
    now: u64,
    scratch: &mut ShardScratch,
    tracing: bool,
) {
    let ShardScratch {
        kept_runnable,
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        error,
        error_core,
        trace,
        ..
    } = scratch;
    let mut out = StepOut {
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        track_dirty: true,
    };
    if tracing {
        walk_runnable(
            ctx,
            runnable,
            now,
            kept_runnable,
            &mut out,
            error,
            error_core,
            &mut BufTrace(trace),
        );
    } else {
        walk_runnable(
            ctx,
            runnable,
            now,
            kept_runnable,
            &mut out,
            error,
            error_core,
            &mut NoTrace,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_runnable<T: TraceCtx>(
    ctx: &mut CorePhase<'_>,
    runnable: &[u32],
    now: u64,
    kept_runnable: &mut Vec<u32>,
    out: &mut StepOut<'_>,
    error: &mut Option<SimError>,
    error_core: &mut u32,
    trace: &mut T,
) {
    for (i, &c) in runnable.iter().enumerate() {
        let result = ctx.step_running_core(c, now, out, trace);
        // The keep check runs even for a faulting core: a core that is
        // still `Running` after its fatal error (e.g. a breakpoint)
        // stays in the set, like every other observable of the
        // post-mortem state.
        if ctx.cores[(c - ctx.core_lo) as usize].state == CoreState::Running {
            kept_runnable.push(c);
        }
        if let Err(e) = result {
            *error = Some(e);
            *error_core = c;
            // Preserve the unstepped tail so the machine state stays
            // consistent for post-mortem inspection.
            kept_runnable.extend_from_slice(&runnable[i + 1..]);
            return;
        }
    }
}

/// Steps this shard's slice of the runnable set in translated mode:
/// identical scheduling to [`step_runnable_cores`], but a runnable core
/// whose pc enters a superblock executes the whole block (up to
/// `horizon`) in one call instead of one instruction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_translated_cores(
    ctx: &mut CorePhase<'_>,
    translation: &Translation,
    runnable: &[u32],
    now: u64,
    horizon: u64,
    scratch: &mut ShardScratch,
    tracing: bool,
) {
    let ShardScratch {
        kept_runnable,
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        error,
        error_core,
        trace,
        ..
    } = scratch;
    let mut out = StepOut {
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        track_dirty: true,
    };
    if tracing {
        walk_translated(
            ctx,
            translation,
            runnable,
            now,
            horizon,
            kept_runnable,
            &mut out,
            error,
            error_core,
            &mut BufTrace(trace),
        );
    } else {
        walk_translated(
            ctx,
            translation,
            runnable,
            now,
            horizon,
            kept_runnable,
            &mut out,
            error,
            error_core,
            &mut NoTrace,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_translated<T: TraceCtx>(
    ctx: &mut CorePhase<'_>,
    translation: &Translation,
    runnable: &[u32],
    now: u64,
    horizon: u64,
    kept_runnable: &mut Vec<u32>,
    out: &mut StepOut<'_>,
    error: &mut Option<SimError>,
    error_core: &mut u32,
    trace: &mut T,
) {
    for (i, &c) in runnable.iter().enumerate() {
        let result = ctx.step_core_translated(c, translation, now, horizon, out, trace);
        // Same kept/fault-tail semantics as `walk_runnable`.
        if ctx.cores[(c - ctx.core_lo) as usize].state == CoreState::Running {
            kept_runnable.push(c);
        }
        if let Err(e) = result {
            *error = Some(e);
            *error_core = c;
            kept_runnable.extend_from_slice(&runnable[i + 1..]);
            return;
        }
    }
}

/// Visits every core of this shard (reference mode): eager accounting for
/// parked states, then the shared running-core step.
pub(crate) fn step_all_cores(
    ctx: &mut CorePhase<'_>,
    now: u64,
    scratch: &mut ShardScratch,
    tracing: bool,
) {
    let ShardScratch {
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        error,
        error_core,
        trace,
        ..
    } = scratch;
    let mut out = StepOut {
        new_dirty_cores,
        prints,
        newly_halted,
        newly_barrier,
        // The reference stepper drains every outbox each cycle and never
        // reads the dirty set; recording it would only grow the merge.
        track_dirty: false,
    };
    if tracing {
        walk_all(ctx, now, &mut out, error, error_core, &mut BufTrace(trace));
    } else {
        walk_all(ctx, now, &mut out, error, error_core, &mut NoTrace);
    }
}

fn walk_all<T: TraceCtx>(
    ctx: &mut CorePhase<'_>,
    now: u64,
    out: &mut StepOut<'_>,
    error: &mut Option<SimError>,
    error_core: &mut u32,
    trace: &mut T,
) {
    let n = ctx.cores.len() as u32;
    for c in ctx.core_lo..ctx.core_lo + n {
        let local = (c - ctx.core_lo) as usize;
        match ctx.cores[local].state {
            CoreState::Halted => continue,
            CoreState::Barrier => {
                ctx.cores[local].stats.barrier_cycles += 1;
                continue;
            }
            CoreState::WaitingMem => {
                ctx.cores[local].stats.sleep_cycles += 1;
                continue;
            }
            CoreState::Running => {}
        }
        if let Err(e) = ctx.step_running_core(c, now, out, trace) {
            *error = Some(e);
            *error_core = c;
            return;
        }
    }
}

/// The ordering-sensitive outputs of a stepping walk (a borrowed-apart
/// view of the shard scratch).
pub(crate) struct StepOut<'a> {
    new_dirty_cores: &'a mut Vec<u32>,
    prints: &'a mut Vec<(u32, u32)>,
    newly_halted: &'a mut u32,
    newly_barrier: &'a mut u32,
    track_dirty: bool,
}

impl CorePhase<'_> {
    fn local(&self, c: u32) -> usize {
        (c - self.core_lo) as usize
    }

    /// Bank holding the word at `addr`.
    fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.num_banks
    }

    fn line_of(&self, pc: u32) -> Option<u32> {
        self.program
            .index_of(pc)
            .and_then(|i| self.program.source_lines.get(i).copied())
    }

    /// Steps one core known to be in [`CoreState::Running`].
    fn step_running_core<T: TraceCtx>(
        &mut self,
        c: u32,
        now: u64,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) -> Result<(), SimError> {
        let i = self.local(c);
        if now < self.cores[i].ready_at || self.core_outbox[i].len() >= 4 {
            self.cores[i].stats.stall_cycles += 1;
            return Ok(());
        }
        self.cores[i].stats.active_cycles += 1;
        self.interp_step(c, now, out, trace)
    }

    /// Steps one runnable core in translated mode. Scheduling guards are
    /// identical to [`Self::step_running_core`], except that cycles a
    /// superblock already charged in-block (`charged_until`) are not
    /// re-charged as per-visit stalls. A pc with a superblock entry runs
    /// the block; boundary instructions (and out-of-text pcs, which must
    /// fault exactly like the interpreter) take the interpreter path.
    fn step_core_translated<T: TraceCtx>(
        &mut self,
        c: u32,
        translation: &Translation,
        now: u64,
        horizon: u64,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) -> Result<(), SimError> {
        let i = self.local(c);
        if now < self.cores[i].ready_at || self.core_outbox[i].len() >= 4 {
            if now > self.cores[i].charged_until {
                self.cores[i].stats.stall_cycles += 1;
            }
            return Ok(());
        }
        if let Some(entry) = translation.entry(self.cores[i].pc) {
            run_block(
                &mut self.cores[i],
                translation,
                entry,
                now,
                horizon,
                &self.cfg.timing,
            );
            return Ok(());
        }
        self.cores[i].stats.active_cycles += 1;
        self.interp_step(c, now, out, trace)
    }

    /// Executes exactly one instruction on core `c` through the decoded-
    /// instruction interpreter and applies its action. Shared tail of
    /// [`Self::step_running_core`] and [`Self::step_core_translated`].
    fn interp_step<T: TraceCtx>(
        &mut self,
        c: u32,
        now: u64,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) -> Result<(), SimError> {
        let i = self.local(c);
        let action = {
            let program = self.program;
            let timing = self.cfg.timing;
            self.cores[i].execute(program, now, &timing)
        };
        let action = match action {
            Ok(a) => a,
            Err(ExecError::IllegalPc(pc)) => return Err(SimError::IllegalPc { core: c, pc }),
            Err(ExecError::Breakpoint(pc)) => {
                return Err(SimError::Breakpoint {
                    core: c,
                    pc,
                    line: self.line_of(pc),
                })
            }
            Err(ExecError::Misaligned { pc, addr }) => {
                return Err(SimError::Misaligned {
                    core: c,
                    pc,
                    addr,
                    line: self.line_of(pc),
                })
            }
        };
        match action {
            Action::Done => Ok(()),
            Action::Halt => {
                self.halt_core(c, out, trace);
                Ok(())
            }
            Action::Mem(intent) => self.apply_intent(c, intent, now, out, trace),
        }
    }

    /// Marks a core halted. The barrier-release check this may enable runs
    /// in the machine's sequential sub-phase after the stepping walk.
    fn halt_core<T: TraceCtx>(&mut self, c: u32, out: &mut StepOut<'_>, trace: &mut T) {
        let i = self.local(c);
        if self.cores[i].state != CoreState::Halted {
            self.cores[i].state = CoreState::Halted;
            *out.newly_halted += 1;
            trace.emit(|| TraceEvent::Halt { core: c });
        }
    }

    fn apply_intent<T: TraceCtx>(
        &mut self,
        c: u32,
        intent: MemIntent,
        now: u64,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) -> Result<(), SimError> {
        let i = self.local(c);
        match intent {
            MemIntent::Fence => {
                if self.cores[i].outstanding_stores == 0 && self.core_outbox[i].is_empty() {
                    self.cores[i].pc += 4;
                }
                // Otherwise: retry next cycle (fence stalls the pipeline).
                Ok(())
            }
            MemIntent::Load {
                addr,
                rd,
                width,
                signed,
            } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    let value = self.mmio_read(c, addr - MMIO_BASE, now);
                    self.cores[i].set_reg(rd, extract(value, addr, width, signed));
                    self.cores[i].pc += 4;
                    return Ok(());
                }
                if addr >= ROM_BASE {
                    let idx = ((addr - ROM_BASE) / 4) as usize;
                    let Some(&word) = self.program.raw.get(idx) else {
                        return Err(SimError::Fault {
                            core: c,
                            addr,
                            what: "load beyond ROM",
                        });
                    };
                    self.cores[i].set_reg(rd, extract(word, addr, width, signed));
                    self.cores[i].pc += 4;
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c,
                        addr,
                        what: "load outside SPM",
                    });
                }
                self.cores[i].pending = Some(PendingMem {
                    rd,
                    addr,
                    kind: PendingKind::Load { width, signed },
                });
                self.cores[i].state = CoreState::WaitingMem;
                self.cores[i].parked_at = now;
                self.cores[i].pc += 4;
                self.emit_park(c, OpKind::Load, trace);
                self.push_request(c, MemRequest::Load { addr: addr & !3 }, out, trace);
                Ok(())
            }
            MemIntent::Store { addr, value, width } => {
                if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
                    self.cores[i].pc += 4;
                    self.mmio_write(c, addr - MMIO_BASE, value, now, out, trace);
                    return Ok(());
                }
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c,
                        addr,
                        what: "store outside SPM (ROM is read-only)",
                    });
                }
                if self.cores[i].outstanding_stores >= self.cfg.timing.store_buffer {
                    return Ok(()); // buffer full: stall, retry next cycle
                }
                let (aligned, lane_value, mask) = store_lanes(addr, value, width);
                self.cores[i].outstanding_stores += 1;
                self.cores[i].pc += 4;
                self.push_request(
                    c,
                    MemRequest::Store {
                        addr: aligned,
                        value: lane_value,
                        mask,
                    },
                    out,
                    trace,
                );
                Ok(())
            }
            MemIntent::Atomic {
                addr,
                rd,
                op,
                operand,
            } => {
                if addr >= self.cfg.spm_bytes {
                    return Err(SimError::Fault {
                        core: c,
                        addr,
                        what: "atomic outside SPM",
                    });
                }
                let (req, kind) = match op {
                    AmoOp::Lr => (MemRequest::Lr { addr }, PendingKind::Value),
                    AmoOp::Sc => (
                        MemRequest::Sc {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::LrWait => (MemRequest::LrWait { addr }, PendingKind::Value),
                    AmoOp::ScWait => (
                        MemRequest::ScWait {
                            addr,
                            value: operand,
                        },
                        PendingKind::Flag,
                    ),
                    AmoOp::MWait => (
                        MemRequest::MWait {
                            addr,
                            expected: operand,
                        },
                        PendingKind::Value,
                    ),
                    rmw => (
                        MemRequest::Amo {
                            addr,
                            op: map_rmw(rmw),
                            operand,
                        },
                        PendingKind::Value,
                    ),
                };
                self.cores[i].pending = Some(PendingMem { rd, addr, kind });
                self.cores[i].state = CoreState::WaitingMem;
                self.cores[i].parked_at = now;
                self.cores[i].pc += 4;
                self.emit_park(c, amo_op_kind(op), trace);
                self.push_request(c, req, out, trace);
                Ok(())
            }
        }
    }

    /// Marks a core parked on a blocking operation, remembering the cause
    /// for the later wake event. The cause is recorded unconditionally so
    /// that machine state (and hence snapshots) does not depend on whether
    /// tracing is enabled; only the event emission is gated.
    fn emit_park<T: TraceCtx>(&mut self, c: u32, kind: OpKind, trace: &mut T) {
        self.park_kind[self.local(c)] = kind;
        if T::ENABLED {
            trace.emit(|| TraceEvent::Park {
                core: c,
                cause: kind,
            });
        }
    }

    fn push_request<T: TraceCtx>(
        &mut self,
        c: u32,
        req: MemRequest,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) {
        let wakeup = self.qnodes[self.local(c)].on_core_request(&req);
        let bank = self.bank_of(req.addr());
        trace.emit(|| TraceEvent::ReqSent {
            core: c,
            bank,
            kind: req_kind(&req),
        });
        self.push_outbox(c, ReqMsg { src: c, bank, req }, out);
        if let Some(wk) = wakeup {
            let wk_bank = self.bank_of(wk.addr());
            trace.emit(|| TraceEvent::ReqSent {
                core: c,
                bank: wk_bank,
                kind: OpKind::WakeUp,
            });
            self.push_outbox(
                c,
                ReqMsg {
                    src: c,
                    bank: wk_bank,
                    req: wk,
                },
                out,
            );
        }
    }

    /// Queues a request on the core's own outbox, recording the empty →
    /// non-empty transition for the event-driven Phase 5 merge.
    fn push_outbox(&mut self, c: u32, msg: ReqMsg, out: &mut StepOut<'_>) {
        let i = self.local(c);
        if out.track_dirty && self.core_outbox[i].is_empty() {
            out.new_dirty_cores.push(c);
        }
        self.core_outbox[i].push_back(msg);
    }

    fn mmio_read(&self, c: u32, offset: u32, now: u64) -> u32 {
        match offset {
            mmio_reg::HARTID => c,
            mmio_reg::NUM_CORES => self.cfg.topology.num_cores as u32,
            mmio_reg::CYCLE => now as u32,
            o if (mmio_reg::ARG0..mmio_reg::ARG0 + 4 * NUM_ARGS as u32).contains(&o)
                && o % 4 == 0 =>
            {
                self.cfg.args[((o - mmio_reg::ARG0) / 4) as usize]
            }
            _ => 0,
        }
    }

    fn mmio_write<T: TraceCtx>(
        &mut self,
        c: u32,
        offset: u32,
        value: u32,
        now: u64,
        out: &mut StepOut<'_>,
        trace: &mut T,
    ) {
        let i = self.local(c);
        match offset {
            mmio_reg::EXIT => self.halt_core(c, out, trace),
            mmio_reg::OP_COUNT => self.cores[i].stats.ops += u64::from(value),
            mmio_reg::REGION => {
                if value != 0 {
                    if self.cores[i].stats.region_start.is_none() {
                        self.cores[i].stats.region_start = Some(now);
                    }
                    trace.emit(|| TraceEvent::RegionEnter { core: c });
                } else {
                    self.cores[i].stats.region_end = Some(now);
                    trace.emit(|| TraceEvent::RegionExit { core: c });
                }
            }
            mmio_reg::BARRIER => {
                // Arrival only: the release check (and its accounting) runs
                // once per cycle in the machine's sequential sub-phase, so
                // it never races across shards and charges every released
                // core identically regardless of visit order.
                self.cores[i].state = CoreState::Barrier;
                self.cores[i].parked_at = now;
                *out.newly_barrier += 1;
                trace.emit(|| TraceEvent::BarrierArrive { core: c });
            }
            mmio_reg::PRINT => out.prints.push((c, value)),
            _ => {}
        }
    }
}

/// Trace [`OpKind`] of a request (what a core sent towards memory).
pub(crate) fn req_kind(req: &MemRequest) -> OpKind {
    match req {
        MemRequest::Load { .. } => OpKind::Load,
        MemRequest::Store { .. } => OpKind::Store,
        MemRequest::Amo { .. } => OpKind::Amo,
        MemRequest::Lr { .. } => OpKind::Lr,
        MemRequest::Sc { .. } => OpKind::Sc,
        MemRequest::LrWait { .. } => OpKind::LrWait,
        MemRequest::ScWait { .. } => OpKind::ScWait,
        MemRequest::MWait { .. } => OpKind::MWait,
        MemRequest::WakeUp { .. } => OpKind::WakeUp,
    }
}

pub(crate) fn map_rmw(op: AmoOp) -> lrscwait_core::RmwOp {
    use lrscwait_core::RmwOp;
    match op {
        AmoOp::Swap => RmwOp::Swap,
        AmoOp::Add => RmwOp::Add,
        AmoOp::Xor => RmwOp::Xor,
        AmoOp::And => RmwOp::And,
        AmoOp::Or => RmwOp::Or,
        AmoOp::Min => RmwOp::Min,
        AmoOp::Max => RmwOp::Max,
        AmoOp::Minu => RmwOp::Minu,
        AmoOp::Maxu => RmwOp::Maxu,
        other => unreachable!("{other:?} is not an RMW AMO"),
    }
}
