//! Simulator configuration: geometry, synchronization architecture, core
//! timing, memory map and harness parameters.
//!
//! Configurations are built through the validating [`SimConfig::builder`],
//! which rejects inconsistent geometry (more cores than banks, zero words
//! per bank, a Colibri controller with zero queues, …) at construction time
//! instead of misbehaving mid-simulation.

use std::error::Error;
use std::fmt;

use lrscwait_chaos::FaultPlan;
use lrscwait_core::SyncArch;
use lrscwait_noc::TopologyConfig;

/// Base address of the instruction ROM.
pub const ROM_BASE: u32 = 0x0040_0000;
/// Base address of the MMIO harness device.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
/// Size of the MMIO window in bytes.
pub const MMIO_SIZE: u32 = 0x1000;

/// MMIO register offsets (byte offsets from [`MMIO_BASE`]).
pub mod mmio_reg {
    /// Write: halt this core (end of computation).
    pub const EXIT: u32 = 0x00;
    /// Write: count `value` completed benchmark operations for this core.
    pub const OP_COUNT: u32 = 0x04;
    /// Write 1: enter the measured region; write 0: leave it.
    pub const REGION: u32 = 0x08;
    /// Write: block until every running core has written (barrier).
    pub const BARRIER: u32 = 0x0C;
    /// Read: this core's hart id.
    pub const HARTID: u32 = 0x10;
    /// Read: total number of cores.
    pub const NUM_CORES: u32 = 0x14;
    /// Read: benchmark argument `i` at `ARG0 + 4*i` (8 slots).
    pub const ARG0: u32 = 0x18;
    /// Write: append `value` to the host-visible debug log.
    pub const PRINT: u32 = 0x38;
    /// Read: current cycle count, truncated to 32 bits (same value as the
    /// `rdcycle` CSR; service kernels timestamp completions with it).
    pub const CYCLE: u32 = 0x3C;
}

/// Number of MMIO argument registers.
pub const NUM_ARGS: usize = 8;

/// How the machine schedules core stepping.
///
/// All three modes are cycle-accurate and produce bit-identical results —
/// every cycle count, statistic, trace stream and benchmark CSV byte
/// (proven continuously by the differential suites in
/// `crates/sim/tests/differential.rs` and `tests/differential.rs`); they
/// differ only in simulation cost. Selected per run through
/// [`SimConfigBuilder::exec_mode`]; any mode is valid with any
/// workload or architecture, so the builder accepts all of them without
/// further validation.
///
/// | Mode | Scheduling | Instruction dispatch | Cost |
/// |---|---|---|---|
/// | `Reference` | every core, every cycle | interpreter | O(cores × cycles) |
/// | `EventDriven` | sorted runnable set + fast-forward | interpreter | O(events) |
/// | `Translated` | sorted runnable set + fast-forward | superblock micro-ops, interpreter at boundaries | O(events), several-fold cheaper per busy instruction |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Runnable-set scheduling with lazy parked-core accounting and (in
    /// `Machine::run`) cycle fast-forwarding: O(events) — the default.
    #[default]
    EventDriven,
    /// Naive stepper: every core visited every cycle with eager per-cycle
    /// accounting — O(cores × cycles). Kept as the differential-testing
    /// ground truth and performance baseline.
    Reference,
    /// Event-driven scheduling plus a translated fast path: straight-line
    /// runs of ALU/branch micro-ops (superblocks, see
    /// [`lrscwait_isa::MicroOp`]) execute as one tight loop charging the
    /// same per-instruction cycle accounting, re-entering the interpreter
    /// at every load/store/AMO/CSR/fence/ecall boundary where the NoC,
    /// adapters, or timing model must observe the core.
    Translated,
}

impl ExecMode {
    /// Whether this mode uses the event-scheduled machinery (runnable
    /// set, lazy parked accounting, fast-forward) rather than the naive
    /// every-core-every-cycle reference walk.
    #[must_use]
    pub fn event_scheduled(self) -> bool {
        !matches!(self, ExecMode::Reference)
    }
}

/// Core pipeline timing knobs (Snitch-like single-issue in-order core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreTiming {
    /// Extra cycles on a taken branch or jump.
    pub branch_penalty: u32,
    /// Cycles for `div`/`rem` (multiplication is single-cycle).
    pub div_latency: u32,
    /// Posted-store buffer depth (stores beyond this stall the core).
    pub store_buffer: u32,
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming {
            branch_penalty: 1,
            div_latency: 8,
            store_buffer: 4,
        }
    }
}

/// A rejected [`SimConfigBuilder`] configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The machine must have at least one core.
    ZeroCores,
    /// More cores than SPM banks — the interleaved memory map requires at
    /// least one bank per core.
    CoresExceedBanks {
        /// Configured core count.
        cores: usize,
        /// Resulting bank count.
        banks: usize,
    },
    /// The SPM is smaller than one word per bank.
    ZeroWordsPerBank {
        /// Configured SPM size in bytes.
        spm_bytes: u32,
        /// Resulting bank count.
        banks: usize,
    },
    /// A Colibri controller needs at least one (head, tail) queue pair.
    ZeroColibriQueues,
    /// A centralized LRSCwait queue needs at least one slot.
    ZeroWaitSlots,
    /// Benchmark argument index outside `0..NUM_ARGS`.
    ArgIndexOutOfRange {
        /// Offending index.
        index: usize,
    },
    /// The machine must have at least one simulation shard.
    ZeroShards,
    /// More simulation shards than cores — every shard must own at least
    /// one core in the sharded stepping phase.
    ShardsExceedCores {
        /// Configured shard count.
        shards: usize,
        /// Configured core count.
        cores: usize,
    },
    /// More simulation shards than banks — every shard must own at least
    /// one bank in the sharded request-service phase.
    ShardsExceedBanks {
        /// Configured shard count.
        shards: usize,
        /// Resulting bank count.
        banks: usize,
    },
    /// Core count not divisible into tiles.
    IndivisibleTiles {
        /// Configured core count.
        cores: usize,
        /// Cores per tile.
        cores_per_tile: usize,
    },
    /// Tile count not divisible into groups.
    IndivisibleGroups {
        /// Resulting tile count.
        tiles: usize,
        /// Tiles per group.
        tiles_per_group: usize,
    },
    /// The watchdog limit must be non-zero.
    ZeroMaxCycles,
    /// A chaos fault-plan probability exceeds 1000 per mille.
    ChaosRateOutOfRange {
        /// Which rate field is out of range.
        field: &'static str,
        /// The offending value.
        per_mille: u16,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroCores => write!(f, "machine needs at least one core"),
            ConfigError::CoresExceedBanks { cores, banks } => {
                write!(
                    f,
                    "{cores} cores exceed {banks} SPM banks (need >= 1 bank per core)"
                )
            }
            ConfigError::ZeroWordsPerBank { spm_bytes, banks } => {
                write!(
                    f,
                    "{spm_bytes} B SPM leaves zero words for each of {banks} banks"
                )
            }
            ConfigError::ZeroColibriQueues => {
                write!(f, "Colibri controllers need at least one queue pair")
            }
            ConfigError::ZeroWaitSlots => {
                write!(f, "centralized LRSCwait queue needs at least one slot")
            }
            ConfigError::ZeroShards => {
                write!(f, "simulation needs at least one shard")
            }
            ConfigError::ShardsExceedCores { shards, cores } => {
                write!(
                    f,
                    "{shards} simulation shards exceed {cores} cores (need >= 1 core per shard)"
                )
            }
            ConfigError::ShardsExceedBanks { shards, banks } => {
                write!(
                    f,
                    "{shards} simulation shards exceed {banks} banks (need >= 1 bank per shard)"
                )
            }
            ConfigError::ArgIndexOutOfRange { index } => {
                write!(f, "benchmark argument index {index} outside 0..{NUM_ARGS}")
            }
            ConfigError::IndivisibleTiles {
                cores,
                cores_per_tile,
            } => {
                write!(
                    f,
                    "{cores} cores do not divide into tiles of {cores_per_tile}"
                )
            }
            ConfigError::IndivisibleGroups {
                tiles,
                tiles_per_group,
            } => {
                write!(
                    f,
                    "{tiles} tiles do not divide into groups of {tiles_per_group}"
                )
            }
            ConfigError::ZeroMaxCycles => write!(f, "watchdog limit must be non-zero"),
            ConfigError::ChaosRateOutOfRange { field, per_mille } => {
                write!(
                    f,
                    "chaos {field} = {per_mille}\u{2030} exceeds 1000\u{2030}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Fabric geometry and link parameters.
    pub topology: TopologyConfig,
    /// Synchronization hardware in front of every bank.
    pub arch: SyncArch,
    /// Total SPM size in bytes (split evenly across banks).
    pub spm_bytes: u32,
    /// Core timing parameters.
    pub timing: CoreTiming,
    /// Watchdog: abort after this many cycles.
    pub max_cycles: u64,
    /// Benchmark arguments visible at `ARG0..`.
    pub args: [u32; NUM_ARGS],
    /// How the machine schedules core stepping (see [`ExecMode`]).
    pub exec_mode: ExecMode,
    /// Number of simulation shards (host worker threads) the machine's
    /// parallel phases run on. `1` (the default) keeps every phase on the
    /// calling thread; `n > 1` services banks and steps cores on a
    /// persistent pool of `n − 1` workers plus the caller, with results
    /// bit-identical to `shards == 1` (see the `Machine` docs for the
    /// determinism contract). Validated: `1 ≤ shards ≤ min(cores, banks)`.
    pub shards: usize,
    /// Optional chaos fault-injection plan (see [`FaultPlan`]). `None`
    /// (the default) disables the engine entirely — one predictable
    /// branch per injection site, results bit-identical to a build
    /// without the engine. `Some(plan)` runs the chaos-on path; a
    /// [`quiet`](FaultPlan::is_quiet) plan decides "no fault" everywhere
    /// and still produces bit-identical results (proven by the
    /// differential suite in `crates/sim/tests/chaos.rs`).
    pub chaos: Option<FaultPlan>,
}

impl SimConfig {
    /// Starts a validating configuration builder (defaults: 4 cores,
    /// LRSC baseline, 64 KiB SPM, 2 M cycle watchdog).
    ///
    /// ```
    /// use lrscwait_sim::{ExecMode, SimConfig};
    ///
    /// let cfg = SimConfig::builder().cores(8).build().unwrap();
    /// assert_eq!(cfg.topology.num_cores, 8);
    /// assert_eq!(cfg.exec_mode, ExecMode::EventDriven);
    /// // Validation happens at build(): more shards than cores is rejected.
    /// assert!(SimConfig::builder().cores(4).shards(64).build().is_err());
    /// ```
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// The paper's full-scale system: 256 cores, 1024 banks, 1 MiB SPM.
    #[must_use]
    pub fn mempool(arch: SyncArch) -> SimConfig {
        SimConfig {
            topology: TopologyConfig::mempool(),
            arch,
            spm_bytes: 1 << 20,
            timing: CoreTiming::default(),
            max_cycles: 10_000_000,
            args: [0; NUM_ARGS],
            exec_mode: ExecMode::EventDriven,
            shards: 1,
            chaos: None,
        }
    }

    /// A small configuration for unit and integration tests.
    #[must_use]
    pub fn small(num_cores: usize, arch: SyncArch) -> SimConfig {
        SimConfig {
            topology: TopologyConfig::small(num_cores),
            arch,
            spm_bytes: 1 << 16,
            timing: CoreTiming::default(),
            max_cycles: 2_000_000,
            args: [0; NUM_ARGS],
            exec_mode: ExecMode::EventDriven,
            shards: 1,
            chaos: None,
        }
    }

    /// Sets argument `i` (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `i >= NUM_ARGS`.
    #[deprecated(
        since = "0.1.0",
        note = "use `SimConfig::builder().arg(i, value)` instead"
    )]
    #[must_use]
    pub fn with_arg(mut self, i: usize, value: u32) -> SimConfig {
        self.args[i] = value;
        self
    }

    /// Words per bank given the geometry.
    #[must_use]
    pub fn words_per_bank(&self) -> usize {
        (self.spm_bytes as usize / 4) / self.topology.num_banks()
    }

    /// Re-validates an existing configuration (the checks of
    /// [`SimConfigBuilder::build`], for configs assembled by hand).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let cores = self.topology.num_cores;
        if cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if cores % self.topology.cores_per_tile != 0 {
            return Err(ConfigError::IndivisibleTiles {
                cores,
                cores_per_tile: self.topology.cores_per_tile,
            });
        }
        let tiles = cores / self.topology.cores_per_tile;
        if tiles % self.topology.tiles_per_group != 0 {
            return Err(ConfigError::IndivisibleGroups {
                tiles,
                tiles_per_group: self.topology.tiles_per_group,
            });
        }
        let banks = tiles * self.topology.banks_per_tile;
        if banks < cores {
            return Err(ConfigError::CoresExceedBanks { cores, banks });
        }
        if (self.spm_bytes as usize / 4) / banks == 0 {
            return Err(ConfigError::ZeroWordsPerBank {
                spm_bytes: self.spm_bytes,
                banks,
            });
        }
        match self.arch {
            SyncArch::Colibri { queues: 0 } => return Err(ConfigError::ZeroColibriQueues),
            SyncArch::LrscWait { slots: 0 } => return Err(ConfigError::ZeroWaitSlots),
            _ => {}
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.shards > cores {
            return Err(ConfigError::ShardsExceedCores {
                shards: self.shards,
                cores,
            });
        }
        if self.shards > banks {
            return Err(ConfigError::ShardsExceedBanks {
                shards: self.shards,
                banks,
            });
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::ZeroMaxCycles);
        }
        if let Some(plan) = self.chaos {
            for (field, per_mille) in [
                ("evict_per_mille", plan.evict_per_mille),
                ("sc_fail_per_mille", plan.sc_fail_per_mille),
                ("wake_delay_per_mille", plan.wake_delay_per_mille),
                ("jitter_per_mille", plan.jitter_per_mille),
            ] {
                if per_mille > 1000 {
                    return Err(ConfigError::ChaosRateOutOfRange { field, per_mille });
                }
            }
        }
        Ok(())
    }
}

/// Validating builder for [`SimConfig`].
///
/// ```
/// use lrscwait_core::SyncArch;
/// use lrscwait_sim::SimConfig;
///
/// # fn main() -> Result<(), lrscwait_sim::ConfigError> {
/// let cfg = SimConfig::builder()
///     .cores(16)
///     .arch(SyncArch::Colibri { queues: 4 })
///     .max_cycles(5_000_000)
///     .arg(0, 7)
///     .build()?;
/// assert_eq!(cfg.topology.num_cores, 16);
/// assert_eq!(cfg.args[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    topology: TopologyConfig,
    arch: SyncArch,
    spm_bytes: u32,
    timing: CoreTiming,
    max_cycles: u64,
    args: Vec<(usize, u32)>,
    exec_mode: ExecMode,
    shards: usize,
    chaos: Option<FaultPlan>,
}

impl Default for SimConfigBuilder {
    fn default() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }
}

impl SimConfigBuilder {
    /// Fresh builder with the small-test defaults.
    #[must_use]
    pub fn new() -> SimConfigBuilder {
        SimConfigBuilder {
            topology: TopologyConfig::small(4),
            arch: SyncArch::Lrsc,
            spm_bytes: 1 << 16,
            timing: CoreTiming::default(),
            max_cycles: 2_000_000,
            args: Vec::new(),
            exec_mode: ExecMode::EventDriven,
            shards: 1,
            chaos: None,
        }
    }

    /// Uses the small single-group topology with `n` cores.
    #[must_use]
    pub fn cores(mut self, n: usize) -> SimConfigBuilder {
        self.topology = TopologyConfig::small(n);
        self
    }

    /// Uses the paper's full-scale MemPool geometry (256 cores, 1024 banks,
    /// 1 MiB SPM, 10 M cycle watchdog).
    #[must_use]
    pub fn mempool(mut self) -> SimConfigBuilder {
        self.topology = TopologyConfig::mempool();
        self.spm_bytes = 1 << 20;
        self.max_cycles = 10_000_000;
        self
    }

    /// Uses a MemPool-style geometry scaled to `n` cores (tiles of 4
    /// cores / 16 banks, groups of up to 16 tiles — see
    /// [`TopologyConfig::mempool_scaled`]), keeping the paper's 1 KiB of
    /// SPM per bank and the 10 M cycle watchdog. `mempool_cores(256)` is
    /// exactly [`mempool`](Self::mempool); the 1024-core barrier study
    /// uses `mempool_cores(1024)`. Like `mempool`, this *sets* the
    /// watchdog — call [`max_cycles`](Self::max_cycles) afterwards to
    /// override it.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a positive multiple of 4 (the tile size).
    #[must_use]
    pub fn mempool_cores(mut self, n: usize) -> SimConfigBuilder {
        self.topology = TopologyConfig::mempool_scaled(n);
        self.spm_bytes = (self.topology.num_banks() as u32) << 10;
        self.max_cycles = 10_000_000;
        self
    }

    /// Uses an explicit topology.
    #[must_use]
    pub fn topology(mut self, topology: TopologyConfig) -> SimConfigBuilder {
        self.topology = topology;
        self
    }

    /// Selects the synchronization architecture.
    #[must_use]
    pub fn arch(mut self, arch: SyncArch) -> SimConfigBuilder {
        self.arch = arch;
        self
    }

    /// Sets the total SPM size in bytes.
    #[must_use]
    pub fn spm_bytes(mut self, bytes: u32) -> SimConfigBuilder {
        self.spm_bytes = bytes;
        self
    }

    /// Sets the core timing parameters.
    #[must_use]
    pub fn timing(mut self, timing: CoreTiming) -> SimConfigBuilder {
        self.timing = timing;
        self
    }

    /// Sets the watchdog cycle limit.
    #[must_use]
    pub fn max_cycles(mut self, cycles: u64) -> SimConfigBuilder {
        self.max_cycles = cycles;
        self
    }

    /// Records benchmark argument `i` (validated at [`build`](Self::build)).
    #[must_use]
    pub fn arg(mut self, i: usize, value: u32) -> SimConfigBuilder {
        self.args.push((i, value));
        self
    }

    /// Selects how the machine schedules core stepping.
    ///
    /// [`ExecMode::EventDriven`] (the default) is the O(events)
    /// runnable-set scheduler; [`ExecMode::Translated`] adds the
    /// superblock micro-op fast path on top of it (fastest for busy
    /// workloads); [`ExecMode::Reference`] is the naive
    /// O(cores × cycles) ground-truth stepper. Results are bit-identical
    /// in every mode — pick `Reference` only for differential testing or
    /// simulator-performance baselining:
    ///
    /// ```
    /// use lrscwait_sim::{ExecMode, SimConfig};
    ///
    /// # fn main() -> Result<(), lrscwait_sim::ConfigError> {
    /// let cfg = SimConfig::builder()
    ///     .cores(4)
    ///     .exec_mode(ExecMode::Translated)
    ///     .build()?;
    /// assert_eq!(cfg.exec_mode, ExecMode::Translated);
    /// assert!(cfg.exec_mode.event_scheduled());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> SimConfigBuilder {
        self.exec_mode = mode;
        self
    }

    /// Sets the number of simulation shards (host worker threads) the
    /// machine's parallel phases run on.
    ///
    /// With `n > 1` the machine services banks and steps cores on a
    /// persistent pool of `n − 1` worker threads plus the calling thread,
    /// with each shard owning a disjoint, contiguous range of banks and
    /// cores. Results are **bit-identical** to a single-sharded run: every
    /// cross-shard merge happens in bank-id / core-id order behind a phase
    /// barrier (see the `Machine` docs for the full determinism contract).
    ///
    /// Validated at [`build`](Self::build): `1 ≤ shards ≤ cores` and
    /// `shards ≤ banks`, so every shard owns at least one bank and one
    /// core.
    ///
    /// ```
    /// use lrscwait_sim::SimConfig;
    ///
    /// # fn main() -> Result<(), lrscwait_sim::ConfigError> {
    /// let cfg = SimConfig::builder().cores(16).shards(4).build()?;
    /// assert_eq!(cfg.shards, 4);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn shards(mut self, shards: usize) -> SimConfigBuilder {
        self.shards = shards;
        self
    }

    /// Enables chaos fault injection with the given [`FaultPlan`]
    /// (validated at [`build`](Self::build): all rates ≤ 1000 per mille).
    ///
    /// ```
    /// use lrscwait_chaos::FaultPlan;
    /// use lrscwait_sim::SimConfig;
    ///
    /// # fn main() -> Result<(), lrscwait_sim::ConfigError> {
    /// let cfg = SimConfig::builder()
    ///     .cores(4)
    ///     .chaos(FaultPlan::standard(42))
    ///     .build()?;
    /// assert!(cfg.chaos.is_some());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn chaos(mut self, plan: FaultPlan) -> SimConfigBuilder {
        self.chaos = Some(plan);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency:
    /// zero cores, cores exceeding banks, an SPM too small for the bank
    /// count, a zero-queue Colibri or zero-slot wait queue, an argument
    /// index outside the MMIO window, indivisible tile/group geometry, or
    /// a zero watchdog.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let mut args = [0u32; NUM_ARGS];
        for &(i, value) in &self.args {
            if i >= NUM_ARGS {
                return Err(ConfigError::ArgIndexOutOfRange { index: i });
            }
            args[i] = value;
        }
        let cfg = SimConfig {
            topology: self.topology,
            arch: self.arch,
            spm_bytes: self.spm_bytes,
            timing: self.timing,
            max_cycles: self.max_cycles,
            args,
            exec_mode: self.exec_mode,
            shards: self.shards,
            chaos: self.chaos,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mempool_defaults() {
        let cfg = SimConfig::mempool(SyncArch::Lrsc);
        assert_eq!(cfg.topology.num_cores, 256);
        assert_eq!(cfg.topology.num_banks(), 1024);
        assert_eq!(cfg.words_per_bank(), 256); // 1 MiB / 4 / 1024
        cfg.validate().unwrap();
    }

    #[test]
    fn small_config_is_consistent() {
        let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
        assert!(cfg.topology.num_banks() >= 4);
        assert!(cfg.words_per_bank() > 0);
        cfg.validate().unwrap();
    }

    #[test]
    fn builder_matches_presets() {
        let built = SimConfig::builder()
            .cores(4)
            .arch(SyncArch::Colibri { queues: 2 })
            .build()
            .unwrap();
        let preset = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
        assert_eq!(built.topology, preset.topology);
        assert_eq!(built.spm_bytes, preset.spm_bytes);
        assert_eq!(built.max_cycles, preset.max_cycles);

        let built = SimConfig::builder().mempool().build().unwrap();
        let preset = SimConfig::mempool(SyncArch::Lrsc);
        assert_eq!(built.topology, preset.topology);
        assert_eq!(built.spm_bytes, preset.spm_bytes);
        assert_eq!(built.max_cycles, preset.max_cycles);
    }

    #[test]
    fn builder_mempool_cores_scales_the_geometry() {
        let c256 = SimConfig::builder().mempool_cores(256).build().unwrap();
        let preset = SimConfig::builder().mempool().build().unwrap();
        assert_eq!(c256.topology, preset.topology);
        assert_eq!(c256.spm_bytes, preset.spm_bytes);

        let c1024 = SimConfig::builder().mempool_cores(1024).build().unwrap();
        assert_eq!(c1024.topology.num_cores, 1024);
        assert_eq!(c1024.topology.num_banks(), 4096);
        assert_eq!(c1024.words_per_bank(), 256, "1 KiB per bank preserved");
        assert!(c1024.max_cycles >= 10_000_000);

        let c64 = SimConfig::builder().mempool_cores(64).build().unwrap();
        assert_eq!(c64.topology.num_banks(), 256);
        c64.validate().unwrap();
    }

    #[test]
    fn builder_args() {
        let cfg = SimConfig::builder()
            .cores(2)
            .arg(0, 7)
            .arg(3, 9)
            .build()
            .unwrap();
        assert_eq!(cfg.args[0], 7);
        assert_eq!(cfg.args[3], 9);
    }

    #[test]
    fn builder_exec_mode_defaults_to_event_driven() {
        let cfg = SimConfig::builder().cores(2).build().unwrap();
        assert_eq!(cfg.exec_mode, ExecMode::EventDriven);
        let cfg = SimConfig::builder()
            .cores(2)
            .exec_mode(ExecMode::Reference)
            .build()
            .unwrap();
        assert_eq!(cfg.exec_mode, ExecMode::Reference);
        let cfg = SimConfig::builder()
            .cores(2)
            .exec_mode(ExecMode::Translated)
            .build()
            .unwrap();
        assert_eq!(cfg.exec_mode, ExecMode::Translated);
        // The translated path rides on the event-scheduled machinery;
        // only Reference walks every core every cycle.
        assert!(ExecMode::EventDriven.event_scheduled());
        assert!(ExecMode::Translated.event_scheduled());
        assert!(!ExecMode::Reference.event_scheduled());
        assert_eq!(
            SimConfig::mempool(SyncArch::Lrsc).exec_mode,
            ExecMode::EventDriven
        );
    }

    #[test]
    fn builder_rejects_zero_cores() {
        assert_eq!(
            SimConfig::builder().cores(0).build().unwrap_err(),
            ConfigError::ZeroCores
        );
    }

    #[test]
    fn builder_rejects_cores_exceeding_banks() {
        let mut topo = TopologyConfig::small(8);
        topo.banks_per_tile = 1; // 2 banks for 8 cores
        let err = SimConfig::builder().topology(topo).build().unwrap_err();
        assert!(
            matches!(err, ConfigError::CoresExceedBanks { cores: 8, .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_rejects_zero_words_per_bank() {
        let err = SimConfig::builder()
            .cores(4)
            .spm_bytes(32)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroWordsPerBank { .. }), "{err}");
    }

    #[test]
    fn builder_rejects_zero_colibri_queues() {
        let err = SimConfig::builder()
            .cores(4)
            .arch(SyncArch::Colibri { queues: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroColibriQueues);
    }

    #[test]
    fn builder_rejects_zero_wait_slots() {
        let err = SimConfig::builder()
            .cores(4)
            .arch(SyncArch::LrscWait { slots: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroWaitSlots);
    }

    #[test]
    fn builder_rejects_bad_arg_index() {
        let err = SimConfig::builder()
            .cores(2)
            .arg(NUM_ARGS, 1)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ArgIndexOutOfRange { index: NUM_ARGS });
    }

    #[test]
    fn builder_rejects_indivisible_geometry() {
        let mut topo = TopologyConfig::small(8);
        topo.cores_per_tile = 3;
        let err = SimConfig::builder().topology(topo).build().unwrap_err();
        assert!(matches!(err, ConfigError::IndivisibleTiles { .. }), "{err}");

        let mut topo = TopologyConfig::small(8);
        topo.tiles_per_group = 3; // 2 tiles, groups of 3
        let err = SimConfig::builder().topology(topo).build().unwrap_err();
        assert!(
            matches!(err, ConfigError::IndivisibleGroups { .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_shards_default_to_one() {
        assert_eq!(SimConfig::builder().cores(4).build().unwrap().shards, 1);
        assert_eq!(SimConfig::mempool(SyncArch::Lrsc).shards, 1);
        assert_eq!(SimConfig::small(4, SyncArch::Lrsc).shards, 1);
    }

    #[test]
    fn builder_accepts_shards_up_to_cores() {
        let cfg = SimConfig::builder().cores(8).shards(8).build().unwrap();
        assert_eq!(cfg.shards, 8);
    }

    #[test]
    fn builder_rejects_zero_shards() {
        let err = SimConfig::builder().cores(4).shards(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroShards);
    }

    #[test]
    fn builder_rejects_shards_exceeding_cores() {
        let err = SimConfig::builder().cores(4).shards(5).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ShardsExceedCores {
                shards: 5,
                cores: 4
            }
        );
    }

    #[test]
    fn shard_bank_bound_holds_at_the_boundary() {
        // The interleaved memory map already requires banks >= cores, so
        // `shards <= cores` implies `shards <= banks` for any config that
        // passes the earlier checks; the bank bound in `validate` is a
        // defensive invariant. Exercise the boundary: shards == cores with
        // the minimum bank surplus still validates.
        let mut topo = TopologyConfig::small(8);
        topo.banks_per_tile = 4; // exactly 8 banks for 8 cores
        let cfg = SimConfig::builder().topology(topo).shards(8).build();
        assert_eq!(cfg.map(|c| c.shards), Ok(8));
    }

    #[test]
    fn builder_chaos_defaults_off_and_rejects_bad_rates() {
        assert!(SimConfig::builder()
            .cores(2)
            .build()
            .unwrap()
            .chaos
            .is_none());
        assert!(SimConfig::mempool(SyncArch::Lrsc).chaos.is_none());
        let cfg = SimConfig::builder()
            .cores(2)
            .chaos(FaultPlan::standard(1))
            .build()
            .unwrap();
        assert_eq!(cfg.chaos, Some(FaultPlan::standard(1)));
        let err = SimConfig::builder()
            .cores(2)
            .chaos(FaultPlan {
                evict_per_mille: 1001,
                ..FaultPlan::quiet(0)
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ChaosRateOutOfRange {
                field: "evict_per_mille",
                per_mille: 1001
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn builder_rejects_zero_watchdog() {
        let err = SimConfig::builder()
            .cores(2)
            .max_cycles(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroMaxCycles);
    }

    #[test]
    fn config_errors_display() {
        let msgs = [
            ConfigError::ZeroCores.to_string(),
            ConfigError::CoresExceedBanks { cores: 8, banks: 2 }.to_string(),
            ConfigError::ZeroWordsPerBank {
                spm_bytes: 32,
                banks: 64,
            }
            .to_string(),
            ConfigError::ZeroColibriQueues.to_string(),
            ConfigError::ArgIndexOutOfRange { index: 9 }.to_string(),
            ConfigError::ZeroShards.to_string(),
            ConfigError::ShardsExceedCores {
                shards: 8,
                cores: 4,
            }
            .to_string(),
            ConfigError::ShardsExceedBanks {
                shards: 8,
                banks: 4,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
