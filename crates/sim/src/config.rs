//! Simulator configuration: geometry, synchronization architecture, core
//! timing, memory map and harness parameters.

use lrscwait_core::SyncArch;
use lrscwait_noc::TopologyConfig;

/// Base address of the instruction ROM.
pub const ROM_BASE: u32 = 0x0040_0000;
/// Base address of the MMIO harness device.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
/// Size of the MMIO window in bytes.
pub const MMIO_SIZE: u32 = 0x1000;

/// MMIO register offsets (byte offsets from [`MMIO_BASE`]).
pub mod mmio_reg {
    /// Write: halt this core (end of computation).
    pub const EXIT: u32 = 0x00;
    /// Write: count `value` completed benchmark operations for this core.
    pub const OP_COUNT: u32 = 0x04;
    /// Write 1: enter the measured region; write 0: leave it.
    pub const REGION: u32 = 0x08;
    /// Write: block until every running core has written (barrier).
    pub const BARRIER: u32 = 0x0C;
    /// Read: this core's hart id.
    pub const HARTID: u32 = 0x10;
    /// Read: total number of cores.
    pub const NUM_CORES: u32 = 0x14;
    /// Read: benchmark argument `i` at `ARG0 + 4*i` (8 slots).
    pub const ARG0: u32 = 0x18;
    /// Write: append `value` to the host-visible debug log.
    pub const PRINT: u32 = 0x38;
}

/// Number of MMIO argument registers.
pub const NUM_ARGS: usize = 8;

/// Core pipeline timing knobs (Snitch-like single-issue in-order core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreTiming {
    /// Extra cycles on a taken branch or jump.
    pub branch_penalty: u32,
    /// Cycles for `div`/`rem` (multiplication is single-cycle).
    pub div_latency: u32,
    /// Posted-store buffer depth (stores beyond this stall the core).
    pub store_buffer: u32,
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming {
            branch_penalty: 1,
            div_latency: 8,
            store_buffer: 4,
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Fabric geometry and link parameters.
    pub topology: TopologyConfig,
    /// Synchronization hardware in front of every bank.
    pub arch: SyncArch,
    /// Total SPM size in bytes (split evenly across banks).
    pub spm_bytes: u32,
    /// Core timing parameters.
    pub timing: CoreTiming,
    /// Watchdog: abort after this many cycles.
    pub max_cycles: u64,
    /// Benchmark arguments visible at `ARG0..`.
    pub args: [u32; NUM_ARGS],
}

impl SimConfig {
    /// The paper's full-scale system: 256 cores, 1024 banks, 1 MiB SPM.
    #[must_use]
    pub fn mempool(arch: SyncArch) -> SimConfig {
        SimConfig {
            topology: TopologyConfig::mempool(),
            arch,
            spm_bytes: 1 << 20,
            timing: CoreTiming::default(),
            max_cycles: 10_000_000,
            args: [0; NUM_ARGS],
        }
    }

    /// A small configuration for unit and integration tests.
    #[must_use]
    pub fn small(num_cores: usize, arch: SyncArch) -> SimConfig {
        SimConfig {
            topology: TopologyConfig::small(num_cores),
            arch,
            spm_bytes: 1 << 16,
            timing: CoreTiming::default(),
            max_cycles: 2_000_000,
            args: [0; NUM_ARGS],
        }
    }

    /// Sets argument `i` (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `i >= NUM_ARGS`.
    #[must_use]
    pub fn with_arg(mut self, i: usize, value: u32) -> SimConfig {
        self.args[i] = value;
        self
    }

    /// Words per bank given the geometry.
    #[must_use]
    pub fn words_per_bank(&self) -> usize {
        (self.spm_bytes as usize / 4) / self.topology.num_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mempool_defaults() {
        let cfg = SimConfig::mempool(SyncArch::Lrsc);
        assert_eq!(cfg.topology.num_cores, 256);
        assert_eq!(cfg.topology.num_banks(), 1024);
        assert_eq!(cfg.words_per_bank(), 256); // 1 MiB / 4 / 1024
    }

    #[test]
    fn small_config_is_consistent() {
        let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 2 });
        assert!(cfg.topology.num_banks() >= 4);
        assert!(cfg.words_per_bank() > 0);
    }

    #[test]
    fn args_builder() {
        let cfg = SimConfig::small(2, SyncArch::Lrsc).with_arg(0, 7).with_arg(3, 9);
        assert_eq!(cfg.args[0], 7);
        assert_eq!(cfg.args[3], 9);
    }
}
