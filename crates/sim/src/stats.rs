//! Simulation statistics: per-core and machine-wide counters, the
//! measurement-region bookkeeping, and derived throughput/fairness metrics.

use lrscwait_core::AdapterStats;
use lrscwait_noc::NetworkStats;

/// Per-core counters.
///
/// # Where every cycle goes
///
/// While a core exists, each simulated cycle it is visited in lands in
/// exactly one of four buckets — the split the paper's argument is
/// about, and the one `examples/quickstart.rs` prints:
///
/// * [`active_cycles`](CoreStats::active_cycles) — the core **issued**
///   an instruction this cycle (useful work, including the issue cycle
///   of memory operations). A polling retry loop burns these.
/// * [`stall_cycles`](CoreStats::stall_cycles) — the core was
///   **runnable but could not issue**: the pipeline had not reached its
///   `ready_at` (taken-branch and divide penalties, the one-cycle
///   realignment after a wake or barrier release) or the request outbox
///   was full (network backpressure).
/// * [`sleep_cycles`](CoreStats::sleep_cycles) — the core was **parked
///   on a blocking memory response**, issuing nothing and producing no
///   network traffic. Waiting inside an LRSCwait/Colibri reservation
///   queue lands here: cheap, polling-free cycles. The same contention
///   on the LRSC baseline shows up as `active_cycles` + network traffic
///   instead (the retry loop), which is exactly the comparison the
///   figures draw.
/// * [`barrier_cycles`](CoreStats::barrier_cycles) — parked at the
///   hardware barrier.
///
/// The buckets are disjoint; cycles after a core halts are in none of
/// them. Both execution modes produce identical splits (the lazy
/// event-driven accounting settles `now − parked_at` deltas on wake so
/// the sums match the reference stepper bit-for-bit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles spent issuing an instruction (see the struct-level
    /// accounting overview).
    pub active_cycles: u64,
    /// Cycles the core was runnable but could not issue: the pipeline had
    /// not reached `ready_at` (branch/divide penalties, post-wake
    /// alignment) or the request outbox was full (backpressure). These
    /// used to be misattributed to `active_cycles`.
    pub stall_cycles: u64,
    /// Cycles blocked waiting for a memory response — *sleeping*, producing
    /// no traffic (the LRSCwait benefit shows up here).
    pub sleep_cycles: u64,
    /// Cycles parked at the hardware barrier.
    pub barrier_cycles: u64,
    /// Benchmark operations counted via the MMIO op counter.
    pub ops: u64,
    /// Cycle of the measured-region start marker (if written).
    pub region_start: Option<u64>,
    /// Cycle of the measured-region end marker (if written).
    pub region_end: Option<u64>,
}

impl CoreStats {
    /// This core's measured-region length in cycles, when both markers were
    /// written.
    #[must_use]
    pub fn region_cycles(&self) -> Option<u64> {
        match (self.region_start, self.region_end) {
            (Some(s), Some(e)) if e > s => Some(e - s),
            _ => None,
        }
    }

    /// Ops per cycle over this core's own measured region.
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        self.region_cycles().map(|c| self.ops as f64 / c as f64)
    }
}

/// Machine-wide statistics after (or during) a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Request-network statistics.
    pub req_network: NetworkStats,
    /// Response-network statistics.
    pub resp_network: NetworkStats,
    /// Sum of all bank adapters' counters.
    pub adapters: AdapterStats,
}

impl SimStats {
    /// Total benchmark operations across cores.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.cores.iter().map(|c| c.ops).sum()
    }

    /// Total instructions retired.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instret).sum()
    }

    /// Total cycles cores spent issuing instructions.
    #[must_use]
    pub fn total_active_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.active_cycles).sum()
    }

    /// Total cycles runnable cores spent stalled (pipeline not ready or
    /// outbox backpressure) across cores.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.stall_cycles).sum()
    }

    /// Total cycles cores spent parked at the hardware barrier.
    #[must_use]
    pub fn total_barrier_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.barrier_cycles).sum()
    }

    /// Total cycles cores spent asleep waiting on memory.
    #[must_use]
    pub fn total_sleep_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.sleep_cycles).sum()
    }

    /// Measured-region window: `(latest start, earliest end among cores that
    /// wrote both markers)` — the span where all participants were active.
    #[must_use]
    pub fn region_window(&self) -> Option<(u64, u64)> {
        let mut start = None;
        let mut end = None;
        for c in &self.cores {
            if let (Some(s), Some(e)) = (c.region_start, c.region_end) {
                start = Some(start.map_or(s, |v: u64| v.max(s)));
                end = Some(end.map_or(e, |v: u64| v.min(e)));
            }
        }
        match (start, end) {
            (Some(s), Some(e)) if e > s => Some((s, e)),
            _ => None,
        }
    }

    /// Aggregate throughput in ops/cycle: total ops divided by the
    /// outermost region span (earliest start to latest end).
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        let mut start: Option<u64> = None;
        let mut end: Option<u64> = None;
        for c in &self.cores {
            if let (Some(s), Some(e)) = (c.region_start, c.region_end) {
                start = Some(start.map_or(s, |v| v.min(s)));
                end = Some(end.map_or(e, |v| v.max(e)));
            }
        }
        match (start, end) {
            (Some(s), Some(e)) if e > s => Some(self.total_ops() as f64 / (e - s) as f64),
            _ => None,
        }
    }

    /// Fairness range: (slowest, fastest) per-core throughput among cores
    /// that completed a region (paper Fig. 6 shading).
    #[must_use]
    pub fn throughput_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for c in &self.cores {
            if let Some(t) = c.throughput() {
                lo = lo.min(t);
                hi = hi.max(t);
                any = true;
            }
        }
        any.then_some((lo, hi))
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// Every core executed `ecall` / wrote the EXIT register.
    AllHalted,
    /// The watchdog cycle limit fired first.
    Watchdog,
    /// A [`crate::Machine::run_until`] cycle target was reached with the
    /// machine still live (some cores not halted, watchdog not fired).
    TargetReached,
}

/// Result of [`crate::Machine::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycle count at exit.
    pub cycles: u64,
    /// Why the run ended.
    pub exit: ExitReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_and_throughput() {
        let stats = SimStats {
            cores: vec![
                CoreStats {
                    ops: 100,
                    region_start: Some(10),
                    region_end: Some(110),
                    ..CoreStats::default()
                },
                CoreStats {
                    ops: 50,
                    region_start: Some(20),
                    region_end: Some(100),
                    ..CoreStats::default()
                },
            ],
            ..SimStats::default()
        };
        assert_eq!(stats.total_ops(), 150);
        assert_eq!(stats.region_window(), Some((20, 100)));
        let t = stats.throughput().unwrap();
        assert!((t - 150.0 / 100.0).abs() < 1e-9); // span 10..110
        let (lo, hi) = stats.throughput_range().unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn missing_region_yields_none() {
        let stats = SimStats {
            cores: vec![CoreStats::default()],
            ..SimStats::default()
        };
        assert_eq!(stats.region_window(), None);
        assert!(stats.throughput().is_none());
        assert!(stats.throughput_range().is_none());
    }

    #[test]
    fn per_core_throughput() {
        let c = CoreStats {
            ops: 10,
            region_start: Some(0),
            region_end: Some(100),
            ..CoreStats::default()
        };
        assert_eq!(c.region_cycles(), Some(100));
        assert!((c.throughput().unwrap() - 0.1).abs() < 1e-12);
    }
}
