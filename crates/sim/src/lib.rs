//! Cycle-accurate MemPool-like manycore simulator.
//!
//! The paper evaluates LRSCwait on MemPool: 256 RV32IMA cores, 1024
//! single-ported SPM banks behind a hierarchical interconnect, cycle-
//! accurate RTL simulation. This crate rebuilds that system architecturally:
//!
//! * cores execute real RV32IMA + Xlrscwait machine code
//!   ([`cpu`], programs assembled by `lrscwait-asm`),
//! * every bank sits behind a pluggable synchronization adapter from
//!   `lrscwait-core` (LRSC baseline, centralized LRSCwait queue, Colibri),
//! * the request/response networks come from `lrscwait-noc` with finite
//!   bandwidth, finite queues and head-of-line blocking,
//! * an MMIO harness device provides barriers, op counters, measured-region
//!   markers and arguments — standing in for MemPool's runtime.
//!
//! Simulation itself scales across host threads: `SimConfig::builder()
//! .shards(n)` services banks and steps cores on a persistent worker
//! pool with bit-identical results for any shard count (see the
//! [`Machine`] docs for the phase structure and determinism contract).
//!
//! # Quickstart
//!
//! ```
//! use lrscwait_asm::Assembler;
//! use lrscwait_core::SyncArch;
//! use lrscwait_sim::{Machine, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     r#"
//!     _start:
//!         la   a0, counter
//!         li   a1, 1
//!         amoadd.w a2, a1, (a0)   # counter += 1, atomically
//!         ecall
//!     .data
//!     counter: .word 0
//!     "#,
//! )?;
//! let cfg = SimConfig::small(4, SyncArch::Colibri { queues: 4 });
//! let mut machine = Machine::new(cfg, &program)?;
//! machine.run()?;
//! assert_eq!(machine.read_word(program.symbol("counter")), 4);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod cpu;
mod machine;
mod phases;
mod shard;
mod stats;
mod translate;

pub use config::{
    mmio_reg, ConfigError, CoreTiming, ExecMode, SimConfig, SimConfigBuilder, MMIO_BASE, MMIO_SIZE,
    NUM_ARGS, ROM_BASE,
};
pub use cpu::DecodedProgram;
pub use machine::{Machine, SimError};
pub use stats::{CoreStats, ExitReason, RunSummary, SimStats};
pub use translate::Translation;

// Host-side profiling types, re-exported so harnesses driving a
// `Machine` need not depend on `lrscwait-telemetry` directly.
pub use lrscwait_telemetry::{PhaseProfile, ProfilerConfig};

// Chaos fault-injection types, re-exported so harnesses enabling the
// engine through `SimConfigBuilder::chaos` need not depend on
// `lrscwait-chaos` directly.
pub use lrscwait_chaos::{FaultPlan, Mutation};
