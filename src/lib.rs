//! # lrscwait — polling-free, retry-free manycore synchronization
//!
//! A full-system Rust reproduction of the DATE 2024 paper
//! *"LRSCwait: Enabling Scalable and Efficient Synchronization in Manycore
//! Systems through Polling-Free and Retry-Free Operation"*
//! (Riedel, Gantenbein, Ottaviano, Hoefler, Benini — arXiv:2401.09359).
//!
//! The paper extends RISC-V with three instructions — `lrwait.w`,
//! `scwait.w` and `mwait.w` — that move the linearization point of atomic
//! read-modify-write sequences from the store-conditional to the
//! load-reserved, letting contending cores *sleep* in a hardware
//! reservation queue instead of polling and retrying. **Colibri** is its
//! scalable implementation: a distributed linked-list queue with one
//! (head, tail) register pair per tracked address and one queue node per
//! core.
//!
//! This workspace rebuilds the entire evaluated system in Rust:
//!
//! | Crate | Role |
//! |---|---|
//! | [`core`] | The protocol: LRSC baseline, centralized LRSCwait queue, Colibri controller + Qnode, Mwait |
//! | [`isa`] | RV32IMA + Xlrscwait instruction set |
//! | [`asm`] | Assembler for benchmark kernels |
//! | [`noc`] | Backpressured hierarchical interconnect |
//! | [`sim`] | Cycle-accurate MemPool-like manycore simulator |
//! | [`trace`] | Zero-overhead tracing: structured events, Perfetto export, handoff/occupancy analysis |
//! | [`telemetry`] | Host-side observability: phase profiler, Amdahl report, worker metrics, heartbeat |
//! | [`chaos`] | Seeded fault injection and the trace-stream invariant checker |
//! | [`kernels`] | The paper's benchmarks as real assembly, behind the `Workload` trait |
//! | [`traffic`] | Open-loop arrival processes and the service harness for tail-latency studies |
//! | [`model`] | Area (Table I) and energy (Table II) models |
//! | `lrscwait-bench` | `Experiment`/`Sweep` runners regenerating every figure and table |
//!
//! `ARCHITECTURE.md` at the repository root is the guided tour: one
//! paragraph per crate, the nine sub-phases of a simulated cycle, the
//! three execution modes, and the determinism contract.
//!
//! # Quickstart
//!
//! Configurations come from the validating `SimConfig::builder()`, which
//! rejects inconsistent geometry up front:
//!
//! ```
//! use lrscwait::asm::Assembler;
//! use lrscwait::core::SyncArch;
//! use lrscwait::sim::{Machine, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four cores atomically increment a counter through the wait extension.
//! let program = Assembler::new().assemble(
//!     r#"
//!     _start:
//!         la   a0, counter
//!     retry:
//!         lrwait.w t0, (a0)      # response withheld until we own the queue head
//!         addi     t0, t0, 1
//!         scwait.w t1, t0, (a0)  # commit and wake the successor
//!         bnez     t1, retry
//!         ecall
//!     .data
//!     counter: .word 0
//!     "#,
//! )?;
//! let cfg = SimConfig::builder()
//!     .cores(4)
//!     .arch(SyncArch::Colibri { queues: 2 })
//!     .build()?;
//! let mut machine = Machine::new(cfg, &program)?;
//! machine.run()?;
//! assert_eq!(machine.read_word(program.symbol("counter")), 4);
//! // Nobody retried: the queue serialized the four cores.
//! assert_eq!(machine.stats().adapters.scwait_failure, 0);
//! # Ok(())
//! # }
//! ```
//!
//! Packaged workloads run through `lrscwait-bench`'s `Experiment`, which
//! loads, simulates, watchdogs and *functionally verifies* in one call:
//!
//! ```
//! use lrscwait::core::SyncArch;
//! use lrscwait::kernels::{HistImpl, HistogramKernel};
//! use lrscwait::sim::SimConfig;
//! use lrscwait_bench::Experiment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SimConfig::builder()
//!     .cores(8)
//!     .arch(SyncArch::Colibri { queues: 4 })
//!     .build()?;
//! let kernel = HistogramKernel::new(HistImpl::LrscWait, 16, 8, 8);
//! let m = Experiment::new(&kernel, cfg).x(16).run()?;
//! assert!(m.throughput > 0.0);
//! # Ok(())
//! # }
//! ```

pub use lrscwait_asm as asm;
pub use lrscwait_chaos as chaos;
pub use lrscwait_core as core;
pub use lrscwait_isa as isa;
pub use lrscwait_kernels as kernels;
pub use lrscwait_model as model;
pub use lrscwait_noc as noc;
pub use lrscwait_sim as sim;
pub use lrscwait_telemetry as telemetry;
pub use lrscwait_trace as trace;
pub use lrscwait_traffic as traffic;
